//! Regenerates every table and figure series of the reproduced
//! evaluation. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured notes.
//!
//! Flags:
//!
//! - `--quick`: reduced experiment sizes (test/CI scale).
//! - `--no-cache`: disable the content-addressed result cache.
//! - `--cache-dir DIR`: cache location (default `target/rlpm-cache`).
//! - `--resume`: pick up an interrupted sweep — load the sweep journal,
//!   report how much already finished, and let the warm cache skip it.
//! - `--max-retries N`: attempts beyond the first before a panicking
//!   cell is quarantined (default 2).
//! - `--failpoints SPEC`: deterministic failure injection (see
//!   `simkit::failpoint`; overrides the `RLPM_FAILPOINTS` env var).
//!
//! The cache is on by default: a warm re-run looks every experiment
//! cell up by content hash and skips straight to table/CSV emission.
//! Cached results are byte-identical to recomputed ones (pinned by the
//! `cache_identity` integration test), so the flag only changes speed.
//!
//! Exit codes: `0` clean, `1` result files could not be written or a
//! section died outright, `2` bad arguments or completed-with-quarantine
//! (some cells gave up after retries; the quarantine report lists them).
//!
//! Without the `obs` feature the sections run concurrently on top of
//! the shared experiment scheduler and their stdout is buffered and
//! printed in a fixed order; with `obs` they run sequentially so each
//! per-experiment metrics window stays attributable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use experiments::ablations::{
    a1_state_features, a2_reward_shaping, a3_exploration, a4_algorithm, ablation_table,
    AblationConfig,
};
use experiments::e1_energy_per_qos::{run_e1, E1Config};
use experiments::e2_learning_curve::{run_e2, E2Config};
use experiments::e3_adaptivity::{phase_table, run_e3, E3Config};
use experiments::e4_decision_latency::{distribution, distribution_table, ladder, ladder_table};
use experiments::e5_qos_violations::{qos_ratio_table, satisfaction_summary, violations_table};
use experiments::e6_fixed_point::{parity_table, run_parity, run_sweep, sweep_table};
use experiments::e7_hw_cost::{cost_table, latency_optimal, run_e7};
use experiments::e8_idle_states::{idle_table, run_e8, E8Config};
use experiments::e9_fault_resilience::{run_e9, E9Arm, E9Config};
use experiments::table::{fmt_pct, Table};

/// Result files that failed to write; a non-zero count fails the run so
/// a missing artifact can never masquerade as a regenerated one.
static WRITE_FAILURES: AtomicU32 = AtomicU32::new(0);

/// Sections that panicked. A quarantine summary panic (some cells gave
/// up after retries; see `experiments::quarantine_report`) lands here
/// too — the run then finishes the other sections and exits 2 with the
/// report instead of dying mid-sweep.
static SECTION_FAILURES: AtomicU32 = AtomicU32::new(0);

/// Per-section stdout buffer. Sections may run concurrently, so each
/// collects its report here and the buffers are printed in a fixed
/// order afterwards; CSV writes go to per-section files and need no
/// serialisation.
#[derive(Default)]
struct SectionOut {
    stdout: String,
}

impl SectionOut {
    fn line(&mut self, text: std::fmt::Arguments<'_>) {
        use std::fmt::Write;
        let _ = writeln!(self.stdout, "{text}");
    }

    fn emit(&mut self, table: &Table, results_dir: &Path, file: &str) {
        self.line(format_args!("{}", table.to_markdown()));
        let path = results_dir.join(file);
        if let Err(e) = table.write_csv(&path) {
            eprintln!("error: {e}");
            WRITE_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: failure tally read after thread join; the join is the synchronisation
        } else {
            self.line(format_args!("(csv written to {})\n", path.display()));
        }
    }
}

/// Opens a fresh metrics window so each experiment's summary covers only
/// its own work. A no-op without the `obs` feature.
fn metrics_begin() {
    simkit::obs::reset();
}

/// Writes the metrics accumulated since [`metrics_begin`] alongside the
/// experiment's CSVs. Nothing is written without the `obs` feature, so
/// the default `results/` layout is identical to an uninstrumented run.
fn metrics_end(results_dir: &Path, experiment: &str) {
    if !simkit::obs::enabled() {
        return;
    }
    let snap = simkit::obs::snapshot();
    if snap.is_empty() {
        return;
    }
    let path = results_dir.join(format!("{experiment}_metrics.csv"));
    if let Err(e) = std::fs::write(&path, snap.to_csv()) {
        eprintln!("error: could not write {}: {e}", path.display());
        WRITE_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: failure tally read after thread join; the join is the synchronisation
    } else {
        println!("(metrics written to {})\n", path.display());
    }
}

struct Args {
    quick: bool,
    no_cache: bool,
    cache_dir: Option<PathBuf>,
    resume: bool,
    max_retries: Option<u32>,
    failpoints: Option<String>,
    wanted: Vec<String>,
}

/// Bad-usage exit: argument and journal errors leave code 2 so tests can
/// tell "refused to start" from "ran and something failed" (code 1).
fn usage_error(message: std::fmt::Arguments<'_>) -> ! {
    eprintln!("regen-tables: {message}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        no_cache: false,
        cache_dir: None,
        resume: false,
        max_retries: None,
        failpoints: None,
        wanted: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            args.quick = true;
        } else if arg == "--no-cache" {
            args.no_cache = true;
        } else if arg == "--resume" {
            args.resume = true;
        } else if arg == "--cache-dir" {
            args.cache_dir = it.next().map(PathBuf::from);
        } else if let Some(dir) = arg.strip_prefix("--cache-dir=") {
            args.cache_dir = Some(PathBuf::from(dir));
        } else if arg == "--max-retries" || arg.starts_with("--max-retries=") {
            let value = arg
                .strip_prefix("--max-retries=")
                .map(str::to_owned)
                .or_else(|| it.next());
            match value.as_deref().map(str::parse::<u32>) {
                Some(Ok(n)) => args.max_retries = Some(n),
                _ => usage_error(format_args!(
                    "--max-retries takes a non-negative integer (got {:?})",
                    value.unwrap_or_default()
                )),
            }
        } else if arg == "--failpoints" || arg.starts_with("--failpoints=") {
            match arg
                .strip_prefix("--failpoints=")
                .map(str::to_owned)
                .or_else(|| it.next())
            {
                Some(spec) => args.failpoints = Some(spec),
                None => usage_error(format_args!("--failpoints takes a plan spec")),
            }
        } else if !arg.starts_with("--") {
            args.wanted.push(arg);
        }
    }
    args
}

type Section<'a> = (&'static str, Box<dyn FnOnce(&mut SectionOut) + Send + 'a>);

fn main() {
    let args = parse_args();
    let quick = args.quick;
    let want = |id: &str| args.wanted.is_empty() || args.wanted.iter().any(|w| w == id);

    // Failure injection and supervision knobs first, so every later
    // layer (cache, journal, scheduler) sees them.
    let plan = match &args.failpoints {
        Some(spec) => simkit::failpoint::FailpointPlan::parse(spec).map(Some),
        None => simkit::failpoint::plan_from_env(),
    };
    match plan {
        Ok(plan) => simkit::failpoint::configure(plan),
        Err(e) => usage_error(format_args!("{e}")),
    }
    if let Some(n) = args.max_retries {
        experiments::set_max_retries(n);
    }
    experiments::clear_quarantine();
    experiments::register_harness_metrics();

    let journalling = if args.no_cache {
        if args.resume {
            usage_error(format_args!(
                "--resume needs the cache: resuming skips finished cells \
                 via the on-disk cache and sweep journal (drop --no-cache)"
            ));
        }
        experiments::cache::configure(None);
        false
    } else {
        let cache_dir = args
            .cache_dir
            .clone()
            .unwrap_or_else(experiments::cache::default_dir);
        experiments::cache::configure(Some(cache_dir.clone()));
        match experiments::journal::begin(&cache_dir, args.resume) {
            Ok(summary) => {
                if args.resume {
                    let torn = if summary.discarded > 0 {
                        format!(" ({} torn line(s) dropped)", summary.discarded)
                    } else {
                        String::new()
                    };
                    eprintln!(
                        "resuming: {} completed cell(s) journalled at {}{torn}",
                        summary.completed,
                        summary.path.display()
                    );
                }
            }
            Err(e) => usage_error(format_args!("{e}")),
        }
        true
    };

    let soc_config = bench::soc_under_test();
    let results_dir = Path::new("results");
    let _ = std::fs::create_dir_all(results_dir);

    let mut sections: Vec<Section> = Vec::new();
    let soc = &soc_config;

    if want("e1") || want("e5") {
        let want_e1 = want("e1");
        let want_e5 = want("e5");
        sections.push((
            "e1",
            Box::new(move |out| {
                let config = if quick {
                    E1Config::quick()
                } else {
                    E1Config::default()
                };
                eprintln!(
                    "running E1 matrix: {} scenarios x {} policies x {} seeds ...",
                    config.scenarios.len(),
                    config.policies.len(),
                    config.seeds.len()
                );
                let result = run_e1(soc, &config);
                if want_e1 {
                    out.emit(
                        &result.energy_per_qos_table(),
                        results_dir,
                        "e1_energy_per_qos.csv",
                    );
                    out.emit(
                        &result.stddev_table(),
                        results_dir,
                        "e1_energy_per_qos_std.csv",
                    );
                    out.emit(&result.summary_table(), results_dir, "e1_summary.csv");
                    out.line(format_args!(
                        "E1 headline: proposed policy's energy-per-QoS is {} lower than the six-governor mean (paper: 31.66%)\n",
                        fmt_pct(result.reduction_vs_six())
                    ));
                }
                if want_e5 {
                    out.emit(&violations_table(&result), results_dir, "e5_violations.csv");
                    out.emit(&qos_ratio_table(&result), results_dir, "e5_qos_ratio.csv");
                    let (rl_qos, shortfall) = satisfaction_summary(&result);
                    out.line(format_args!(
                        "E5 headline: proposed policy delivers {} of achievable QoS ({} below the performance governor)\n",
                        fmt_pct(rl_qos),
                        fmt_pct(shortfall)
                    ));
                }
            }),
        ));
    }

    if want("e2") {
        sections.push((
            "e2",
            Box::new(move |out| {
                let config = if quick {
                    E2Config::quick()
                } else {
                    E2Config::default()
                };
                eprintln!(
                    "running E2 learning curve: {} episodes ...",
                    config.episodes
                );
                let result = run_e2(soc, &config);
                out.emit(&result.table(), results_dir, "e2_learning_curve.csv");
                out.line(format_args!(
                    "E2 headline: energy-per-QoS improved {} from the first to the last training episodes; ondemand reference = {:.4} J/unit\n",
                    fmt_pct(result.improvement(10)),
                    result.ondemand_reference
                ));
            }),
        ));
    }

    if want("e3") {
        sections.push((
            "e3",
            Box::new(move |out| {
                let config = if quick {
                    E3Config::quick()
                } else {
                    E3Config::default()
                };
                eprintln!(
                    "running E3 adaptivity trace ({} s) ...",
                    config.duration_secs
                );
                let results = run_e3(soc, &config);
                out.emit(&phase_table(&results), results_dir, "e3_adaptivity.csv");
            }),
        ));
    }

    if want("e4") {
        sections.push((
            "e4",
            Box::new(move |out| {
                eprintln!("running E4 latency models ...");
                let l = ladder(soc);
                out.emit(&ladder_table(&l), results_dir, "e4_ladder.csv");
                let d = distribution(soc, if quick { 10 } else { 60 }, 4);
                out.emit(&distribution_table(&d), results_dir, "e4_distribution.csv");
                out.line(format_args!(
                    "E4 headline: decision latency reduced up to {:.1}x (compute-only; paper: up to 40x), {:.2}x on average end-to-end (journal: 3.92x)\n",
                    l.max_speedup, d.speedup
                ));
            }),
        ));
    }

    if want("e6") {
        sections.push((
            "e6",
            Box::new(move |out| {
                eprintln!("running E6 parity and bit-width sweep ...");
                let transitions = if quick { 5_000 } else { 50_000 };
                let report = run_parity(soc, transitions, 6);
                out.emit(&parity_table(&report), results_dir, "e6_parity.csv");
                let points = run_sweep(soc, transitions, 6);
                out.emit(&sweep_table(&points), results_dir, "e6_bitwidth.csv");
            }),
        ));
    }

    if want("e7") {
        sections.push((
            "e7",
            Box::new(move |out| {
                eprintln!("running E7 fabric-cost sweep ...");
                let reports = run_e7(soc);
                out.emit(&cost_table(&reports), results_dir, "e7_hw_cost.csv");
                if let Some(best) = latency_optimal(&reports) {
                    out.line(format_args!(
                        "E7 headline: latency-optimal banking is {} banks ({:.3} us/decision at {:.0} MHz)\n",
                        best.banks, best.decision_us_at_fmax, best.est_fmax_mhz
                    ));
                }
            }),
        ));
    }

    if want("e9") {
        sections.push((
            "e9",
            Box::new(move |out| {
                // E9: the same headline comparison on the symmetric
                // quad-core SoC (the journal evaluates both CPU types).
                let config = if quick {
                    E1Config::quick()
                } else {
                    E1Config::default()
                };
                eprintln!("running E9 (E1 on the symmetric SoC) ...");
                let symmetric = soc::SocConfig::symmetric_quad().expect("preset valid");
                let result = run_e1(&symmetric, &config);
                out.emit(
                    &result.energy_per_qos_table(),
                    results_dir,
                    "e9_symmetric_energy_per_qos.csv",
                );
                out.emit(
                    &result.summary_table(),
                    results_dir,
                    "e9_symmetric_summary.csv",
                );
                out.line(format_args!(
                    "E9 headline: on the symmetric SoC the proposed policy is {} below the six-governor mean\n",
                    fmt_pct(result.reduction_vs_six())
                ));
            }),
        ));
    }

    if want("e9-fault") {
        sections.push((
            "e9_fault",
            Box::new(move |out| {
                let config = if quick {
                    E9Config::quick()
                } else {
                    E9Config::default()
                };
                eprintln!(
                    "running E9 fault-resilience sweep: {} arms x {} multipliers x {} seeds ...",
                    config.arms.len(),
                    config.multipliers.len(),
                    config.seeds.len()
                );
                let result = run_e9(soc, &config);
                out.emit(
                    &result.violations_table(),
                    results_dir,
                    "e9_fault_violations.csv",
                );
                out.emit(
                    &result.energy_per_qos_table(),
                    results_dir,
                    "e9_fault_energy_per_qos.csv",
                );
                out.emit(&result.summary_table(), results_dir, "e9_fault_summary.csv");
                out.line(format_args!(
                    "E9-fault headline: QoS-violation growth at the highest fault rate is {:.1} with the \
                     watchdog vs {:.1} without (lower growth = more graceful degradation)\n",
                    result.violation_growth(E9Arm::RlWatchdog),
                    result.violation_growth(E9Arm::RlNoFallback)
                ));
            }),
        ));
    }

    if want("e8") {
        sections.push((
            "e8",
            Box::new(move |out| {
                let config = if quick {
                    E8Config::quick()
                } else {
                    E8Config::default()
                };
                eprintln!("running E8 cpuidle comparison ...");
                let cells = run_e8(&config);
                out.emit(&idle_table(&cells), results_dir, "e8_idle_states.csv");
            }),
        ));
    }

    let ablation_config = if quick {
        AblationConfig::quick()
    } else {
        AblationConfig::default()
    };
    type AblationFn =
        fn(&soc::SocConfig, &AblationConfig) -> Vec<experiments::ablations::AblationRow>;
    let ablations: [(&'static str, &'static str, &'static str, AblationFn); 4] = [
        (
            "a1",
            "A1: state-feature ablation",
            "a1_state_features.csv",
            a1_state_features,
        ),
        (
            "a2",
            "A2: violation-penalty sweep",
            "a2_reward_shaping.csv",
            a2_reward_shaping,
        ),
        (
            "a3",
            "A3: exploration schedules",
            "a3_exploration.csv",
            a3_exploration,
        ),
        ("a4", "A4: TD algorithms", "a4_algorithm.csv", a4_algorithm),
    ];
    for (id, title, file, runner) in ablations {
        if !want(id) {
            continue;
        }
        sections.push((
            id,
            Box::new(move |out| {
                eprintln!("running {title} ...");
                let rows = runner(soc, &ablation_config);
                out.emit(&ablation_table(title, &rows), results_dir, file);
            }),
        ));
    }

    // With `obs` each section needs its own global metrics window, so
    // the sections run one after another; without it they run
    // concurrently and share the experiment scheduler's worker pool.
    if simkit::obs::enabled() {
        for (id, section) in sections {
            metrics_begin();
            let mut out = SectionOut::default();
            // A quarantined section raises one summary panic after its
            // batch drains; catch it here so the remaining sections (and
            // their metrics windows) still run. Partial output is kept.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| section(&mut out))).is_err()
            {
                SECTION_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: failure tally read after the sequential loop; same thread
            }
            print!("{}", out.stdout);
            metrics_end(results_dir, id);
        }
    } else {
        let outputs: Vec<SectionOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = sections
                .into_iter()
                .map(|(_, section)| {
                    scope.spawn(move || {
                        let mut out = SectionOut::default();
                        section(&mut out);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| {
                        SECTION_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: failure tally read after thread join; the join is the synchronisation
                        SectionOut::default()
                    })
                })
                .collect()
        });
        for out in outputs {
            print!("{}", out.stdout);
        }
    }

    let stats = experiments::cache::stats();
    println!(
        "cache: hits={} misses={} evictions={} stores={}",
        stats.hits, stats.misses, stats.evictions, stats.stores
    );
    if journalling {
        let (total, new) = experiments::journal::progress();
        println!("journal: {total} cell(s) complete ({new} recorded by this run)");
        experiments::journal::end();
    }

    let write_failures = WRITE_FAILURES.load(Ordering::Relaxed); // xtask-atomics: read after join; every worker increment happened-before via the join
    let section_failures = SECTION_FAILURES.load(Ordering::Relaxed); // xtask-atomics: read after join; every worker increment happened-before via the join
    let quarantined = experiments::quarantine_report();
    if !quarantined.is_empty() {
        eprintln!(
            "quarantine report: {} cell(s) gave up after retries:",
            quarantined.len()
        );
        for record in &quarantined {
            eprintln!("  {record}");
        }
        eprintln!("run completed with quarantined cells; their tables are missing or partial");
        std::process::exit(2);
    }
    if write_failures + section_failures > 0 {
        eprintln!(
            "{write_failures} result file(s) could not be written, {section_failures} section(s) failed"
        );
        std::process::exit(1);
    }
}

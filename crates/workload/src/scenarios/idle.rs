//! Near-idle: sparse background sync plus rare notifications. The floor of
//! the catalog — a governor that cannot save energy here cannot save it
//! anywhere.

use simkit::{SimDuration, SimTime};
use soc::{Job, JobClass};

use super::{fast_forward, JobFactory};
use crate::{QosSpec, Scenario};

/// Background sync tick period.
const SYNC_PERIOD: SimDuration = SimDuration::from_millis(400);
/// Work per sync tick.
const SYNC_WORK: f64 = 1.5e6;
/// Mean interval between notifications.
const NOTIFY_MEAN_S: f64 = 4.0;
/// Notification render work.
const NOTIFY_WORK: f64 = 5.0e6;

/// Near-idle background activity.
#[derive(Debug, Clone)]
pub struct Idle {
    factory: JobFactory,
    next_sync: SimTime,
    next_notify: SimTime,
}

impl Idle {
    /// Creates the scenario.
    pub fn new(seed: u64) -> Self {
        let mut factory = JobFactory::new(seed, "idle");
        let first = SimTime::ZERO
            + SimDuration::from_secs_f64(factory.rng.exponential(1.0 / NOTIFY_MEAN_S));
        Idle {
            factory,
            next_sync: SimTime::ZERO,
            next_notify: first,
        }
    }
}

impl Scenario for Idle {
    fn name(&self) -> &str {
        "idle"
    }

    fn qos_spec(&self) -> QosSpec {
        QosSpec::with_tolerance(SimDuration::from_millis(250))
    }

    fn arrivals(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, Job)> {
        let mut out = Vec::new();
        fast_forward(&mut self.next_sync, from, SYNC_PERIOD);
        if self.next_notify < from {
            self.next_notify = from
                + SimDuration::from_secs_f64(self.factory.rng.exponential(1.0 / NOTIFY_MEAN_S));
        }
        while self.next_sync < to {
            let work = self.factory.work(SYNC_WORK, 0.2, 2.0);
            out.push(self.factory.job(
                self.next_sync,
                work,
                SimDuration::from_secs(2),
                JobClass::Background,
            ));
            self.next_sync += SYNC_PERIOD;
        }
        while self.next_notify < to {
            let work = self.factory.work(NOTIFY_WORK, 0.3, 2.0);
            out.push(self.factory.job(
                self.next_notify,
                work,
                SimDuration::from_millis(500),
                JobClass::Normal,
            ));
            self.next_notify +=
                SimDuration::from_secs_f64(self.factory.rng.exponential(1.0 / NOTIFY_MEAN_S));
        }
        out.sort_by_key(|(at, _)| *at);
        out
    }

    fn reset(&mut self) {
        self.next_sync = SimTime::ZERO;
        self.next_notify = SimTime::ZERO
            + SimDuration::from_secs_f64(self.factory.rng.exponential(1.0 / NOTIFY_MEAN_S));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mostly_background_work() {
        let mut i = Idle::new(1);
        let jobs = i.arrivals(SimTime::ZERO, SimTime::from_secs(30));
        let bg = jobs
            .iter()
            .filter(|(_, j)| j.class == JobClass::Background)
            .count();
        let fg = jobs.len() - bg;
        assert!(bg > fg, "bg {bg} vs fg {fg}");
    }

    #[test]
    fn demand_is_tiny() {
        let mut i = Idle::new(2);
        let total: u64 = i
            .arrivals(SimTime::ZERO, SimTime::from_secs(10))
            .iter()
            .map(|(_, j)| j.work)
            .sum();
        // Under 0.01% of a big cluster-second of capacity per second.
        assert!(total < 200_000_000, "idle demand too high: {total}");
    }
}

//! Workload characteristic predictor.
//!
//! The paper's policy "predicts a system's characteristics": the
//! observable implementation of that in a tabular agent is a trend
//! feature — is demand rising, flat, or falling — derived from an EWMA
//! over the capacity-normalised utilisation. Rising demand lets the
//! policy raise frequency *before* deadlines slip; falling demand lets it
//! cut early.

use governors::SystemState;
use simkit::stats::Ewma;

use crate::RlConfig;

/// EWMA-based load predictor with a trend classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Predictor {
    ewma: Ewma,
    last: f64,
    trend: f64,
    dead_band: f64,
}

impl Predictor {
    /// Creates a predictor with the configured smoothing and dead band.
    pub fn new(config: &RlConfig) -> Self {
        Predictor {
            ewma: Ewma::new(config.predictor_alpha),
            last: 0.0,
            trend: 0.0,
            dead_band: config.trend_dead_band,
        }
    }

    /// Aggregate capacity-normalised demand across clusters for an
    /// observation, in `[0, 1]`.
    pub fn demand_of(state: &SystemState) -> f64 {
        let mut total = 0.0;
        for c in &state.soc.clusters {
            let (_, f_max) = c.freq_range_hz;
            total += (c.util_max * c.freq_hz as f64 / f_max as f64).clamp(0.0, 1.0);
        }
        total / state.num_clusters() as f64
    }

    /// Feeds one epoch's observation; must be called exactly once per
    /// epoch, before encoding the state.
    pub fn observe(&mut self, state: &SystemState) {
        let demand = Self::demand_of(state);
        let smoothed = self.ewma.update(demand);
        self.trend = demand - smoothed;
        self.last = demand;
    }

    /// Predicted demand for the next epoch (EWMA plus momentum).
    pub fn predicted_demand(&self) -> f64 {
        (self.ewma.value() + 1.5 * self.trend).clamp(0.0, 1.0)
    }

    /// The raw trend signal (positive = rising).
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Classifies the trend into `bins` (odd counts give a symmetric
    /// falling/flat/rising split; bin `bins/2` is "flat").
    pub fn trend_bin(&self, bins: usize) -> usize {
        if bins == 1 {
            return 0;
        }
        let mid = bins / 2;
        if self.trend > self.dead_band {
            (mid + 1).min(bins - 1)
        } else if self.trend < -self.dead_band {
            mid.saturating_sub(1)
        } else {
            mid
        }
    }

    /// Clears state between episodes.
    pub fn reset(&mut self) {
        self.ewma.reset();
        self.last = 0.0;
        self.trend = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::state::synthetic_state;
    use soc::SocConfig;

    fn predictor() -> Predictor {
        Predictor::new(&RlConfig::for_soc(&SocConfig::symmetric_quad().unwrap()))
    }

    fn obs(util: f64) -> SystemState {
        // Single cluster at max frequency so util == capacity demand.
        synthetic_state(&[(util, 10, 11, 1_800_000_000, (300_000_000, 1_800_000_000))])
    }

    #[test]
    fn flat_load_is_flat_trend() {
        let mut p = predictor();
        for _ in 0..20 {
            p.observe(&obs(0.5));
        }
        assert_eq!(p.trend_bin(3), 1);
        assert!((p.predicted_demand() - 0.5).abs() < 0.05);
    }

    #[test]
    fn rising_load_is_detected() {
        let mut p = predictor();
        for i in 0..10 {
            p.observe(&obs(0.1 + 0.08 * i as f64));
        }
        assert_eq!(p.trend_bin(3), 2);
        assert!(
            p.predicted_demand() > 0.8,
            "momentum extrapolates: {}",
            p.predicted_demand()
        );
    }

    #[test]
    fn falling_load_is_detected() {
        let mut p = predictor();
        for i in 0..10 {
            p.observe(&obs(0.9 - 0.08 * i as f64));
        }
        assert_eq!(p.trend_bin(3), 0);
    }

    #[test]
    fn small_wiggles_stay_in_dead_band() {
        let mut p = predictor();
        for i in 0..50 {
            p.observe(&obs(0.5 + if i % 2 == 0 { 0.01 } else { -0.01 }));
        }
        assert_eq!(p.trend_bin(3), 1);
    }

    #[test]
    fn single_bin_always_zero() {
        let mut p = predictor();
        p.observe(&obs(1.0));
        assert_eq!(p.trend_bin(1), 0);
    }

    #[test]
    fn reset_clears_memory() {
        let mut p = predictor();
        for _ in 0..10 {
            p.observe(&obs(1.0));
        }
        p.reset();
        assert_eq!(p.trend(), 0.0);
        assert_eq!(p.predicted_demand(), 0.0);
    }

    #[test]
    fn demand_normalises_by_frequency() {
        // 100% busy at the lowest OPP is a small capacity demand.
        let low = synthetic_state(&[(1.0, 0, 11, 300_000_000, (300_000_000, 1_800_000_000))]);
        let high = synthetic_state(&[(1.0, 10, 11, 1_800_000_000, (300_000_000, 1_800_000_000))]);
        assert!(Predictor::demand_of(&low) < 0.2);
        assert!((Predictor::demand_of(&high) - 1.0).abs() < 1e-12);
    }
}

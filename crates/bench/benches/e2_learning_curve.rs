//! Bench for **E2** — the learning-convergence figure. Times one training
//! episode (the unit of the curve's x-axis) and prints a short
//! regenerated curve.

use criterion::{criterion_group, criterion_main, Criterion};

use experiments::e2_learning_curve::{run_e2, E2Config};
use experiments::{run, RunConfig};
use governors::Governor;
use rlpm::{RlConfig, RlGovernor};
use soc::Soc;
use workload::ScenarioKind;

fn bench_e2(c: &mut Criterion) {
    let soc_config = bench::soc_under_test();

    let result = run_e2(&soc_config, &E2Config::quick());
    println!("{}", result.table().to_markdown());
    println!(
        "improvement head->tail: {:.2}% | ondemand reference {:.5} J/unit\n",
        result.improvement(3) * 100.0,
        result.ondemand_reference
    );

    let mut group = c.benchmark_group("e2");
    group.sample_size(10);
    group.bench_function("one_training_episode_mixed_30s", |b| {
        let mut policy = RlGovernor::new(RlConfig::for_soc(&soc_config), 5);
        let mut scenario = ScenarioKind::Mixed.build(5);
        b.iter(|| {
            let mut soc = Soc::new(soc_config.clone()).unwrap();
            let metrics = run(
                &mut soc,
                scenario.as_mut(),
                &mut policy,
                RunConfig::seconds(30),
            );
            scenario.reset();
            policy.reset();
            metrics
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);

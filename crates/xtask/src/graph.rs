//! Token-level symbol extraction and call-graph construction.
//!
//! The taint engine needs to know, for every `fn` in the workspace, which
//! other functions it calls — without `syn` (the build is offline) and
//! without type information. This module builds that graph lexically from
//! the same preprocessed line stream the per-line lints use:
//!
//! * **Definitions** — every `fn name` is recorded with its 1-based line
//!   span and, when it sits inside an `impl` block, the base identifier of
//!   the implementing type (`impl Governor for RlGovernor` → `RlGovernor`).
//!   Brace depth is tracked across the whole file so nested items, trait
//!   method declarations (`fn f(&self);`) and `where` clauses are handled.
//! * **Call sites** — inside a function body, `ident(` is a bare call,
//!   `.ident(` a method call and `Owner::ident(` a qualified call
//!   (`Self::` resolves to the enclosing impl's type). Macros (`ident!`)
//!   and the definition's own name are excluded.
//! * **Resolution** — deliberately conservative. A call edge is only
//!   created when the candidate set (restricted to crates the caller's
//!   crate can actually depend on, per the workspace `Cargo.toml` path
//!   dependencies) has exactly one member after preferring same-file, then
//!   same-crate definitions. Ambiguous names (`new`, `len`, trait methods
//!   with several impls) resolve to nothing: the engine favours false
//!   negatives over false positives, because a false positive would fail a
//!   clean build.
//!
//! Known lexical blind spots, accepted by design: turbofish calls
//! (`f::<T>(…)`), calls through function pointers/closures, and operator
//! overloads (`a + b` never creates an edge even when `Add::add` panics).
//! The per-line lexical lints remain the backstop for seeds; the graph
//! only adds *transitive* reach on top of them.

use std::collections::{BTreeMap, BTreeSet};

use crate::{preprocess, Line};

/// Method names so ubiquitous on std types (`u64::min`, `Iterator::max`,
/// `Option::take`, …) that a `.name(…)` call is far more likely to target
/// std than a workspace `fn` of the same name. Method-call resolution
/// refuses these outright — a workspace method that shadows one of them
/// still gets edges from `Qualified` call sites (`Owner::name(…)`), and a
/// missed edge is only a false negative, which the lexical backstop
/// tolerates by design.
const COMMON_STD_METHODS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "abs",
    "pow",
    "len",
    "is_empty",
    "get",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "clone",
    "next",
    "iter",
    "into_iter",
    "take",
    "swap",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_string",
    "to_owned",
    "write",
    "read",
    "flush",
];

/// Rust keywords (and call-lookalike syntax words) that never name a
/// workspace function.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(…)` — a plain path-less call.
    Bare(String),
    /// `Owner::name(…)` — only the last two path segments are kept;
    /// `Self::name` is rewritten to the enclosing impl's type.
    Qualified(String, String),
    /// `.name(…)` — receiver type unknown.
    Method(String),
}

impl Callee {
    /// The called function's bare name.
    pub fn name(&self) -> &str {
        match self {
            Callee::Bare(n) | Callee::Method(n) => n,
            Callee::Qualified(_, n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// What the call names.
    pub callee: Callee,
}

/// One `fn` definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's identifier.
    pub name: String,
    /// Base type identifier of the enclosing `impl`, if any.
    pub owner: Option<String>,
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive body span, starting at the `fn` line (so seeds in
    /// the signature — an `f64` parameter, say — belong to the function).
    pub body: (usize, usize),
    /// Whether the definition sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites found in the body.
    pub calls: Vec<CallSite>,
}

/// One scanned source file.
pub struct SourceFile {
    /// Repo-relative path label used in diagnostics.
    pub label: String,
    /// The owning crate's name (directory basename).
    pub crate_name: String,
    /// Preprocessed lines (comments stripped, strings blanked).
    pub(crate) lines: Vec<Line>,
    /// Per-line flag: inside an `xtask-hotpath: begin`/`end` region.
    pub hotpath: Vec<bool>,
    /// For each line, the innermost enclosing fn (index into
    /// [`Workspace::fns`]), so seeds attach to the function that actually
    /// contains them rather than every lexical ancestor.
    pub line_owner: Vec<Option<usize>>,
}

/// The whole indexed workspace: files, functions and name indexes.
#[derive(Default)]
pub struct Workspace {
    /// Scanned files, in insertion order.
    pub files: Vec<SourceFile>,
    /// Every extracted function.
    pub fns: Vec<FnDef>,
    /// crate → set of crates it may call into (transitive deps + itself).
    /// Empty ⇒ no dependency filtering (fixture workspaces).
    deps: BTreeMap<String, BTreeSet<String>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a direct dependency edge between crates; call before
    /// [`Workspace::build_index`], which closes the relation transitively.
    pub fn add_dep(&mut self, krate: &str, dep: &str) {
        self.deps
            .entry(krate.to_string())
            .or_default()
            .insert(dep.to_string());
    }

    /// Parses and indexes one source file.
    pub fn add_file(&mut self, label: &str, crate_name: &str, source: &str) {
        let lines = preprocess(source);
        let mut hotpath = Vec::with_capacity(lines.len());
        let mut in_hot = false;
        for line in &lines {
            if line.comment.contains("xtask-hotpath: begin") {
                in_hot = true;
            }
            if line.comment.contains("xtask-hotpath: end") {
                in_hot = false;
            }
            hotpath.push(in_hot);
        }
        let file_idx = self.files.len();
        let first_fn = self.fns.len();
        let fns = extract_fns(file_idx, &lines);
        // Innermost-wins line ownership: assign wider spans first so
        // nested functions overwrite their ancestors.
        let mut line_owner = vec![None; lines.len()];
        let mut order: Vec<usize> = (0..fns.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(fns[i].body.1 - fns[i].body.0));
        for i in order {
            let (start, end) = fns[i].body;
            for entry in line_owner
                .iter_mut()
                .take(end.min(lines.len()))
                .skip(start.saturating_sub(1))
            {
                *entry = Some(first_fn + i);
            }
        }
        self.fns.extend(fns);
        self.files.push(SourceFile {
            label: label.to_string(),
            crate_name: crate_name.to_string(),
            lines,
            hotpath,
            line_owner,
        });
    }

    /// The preprocessed lines of a file (for the taint engine's seed scan
    /// and suppression lookups).
    pub(crate) fn lines(&self, file: usize) -> &[Line] {
        &self.files[file].lines
    }

    /// Builds the name indexes and the transitive dependency closure.
    /// Call once after all files and deps are added.
    pub fn build_index(&mut self) {
        self.by_name.clear();
        self.by_owner_name.clear();
        for (idx, f) in self.fns.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_default().push(idx);
            if let Some(owner) = &f.owner {
                self.by_owner_name
                    .entry((owner.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            }
        }
        // Transitive closure; every crate can always call itself.
        let crates: Vec<String> = self.deps.keys().cloned().collect();
        for name in &crates {
            self.deps.get_mut(name).map(|s| s.insert(name.clone()));
        }
        let mut changed = true;
        while changed {
            changed = false;
            for name in &crates {
                let direct: Vec<String> = self.deps[name].iter().cloned().collect();
                let mut add = BTreeSet::new();
                for d in &direct {
                    if let Some(trans) = self.deps.get(d) {
                        for t in trans {
                            if !self.deps[name].contains(t) {
                                add.insert(t.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    if let Some(set) = self.deps.get_mut(name) {
                        set.extend(add);
                    }
                }
            }
        }
    }

    /// Whether `caller_crate` is allowed to resolve into `callee_crate`
    /// (no dependency data ⇒ everything is reachable).
    fn reachable(&self, caller_crate: &str, callee_crate: &str) -> bool {
        if self.deps.is_empty() {
            return true;
        }
        caller_crate == callee_crate
            || self
                .deps
                .get(caller_crate)
                .is_some_and(|s| s.contains(callee_crate))
    }

    /// Resolves a call site to a function index, or `None` when the
    /// target is outside the workspace or ambiguous.
    pub fn resolve(&self, caller: usize, callee: &Callee) -> Option<usize> {
        let caller_file = self.fns[caller].file;
        let caller_crate = &self.files[caller_file].crate_name;
        let live = |&idx: &usize| {
            !self.fns[idx].in_test
                && self.reachable(caller_crate, &self.files[self.fns[idx].file].crate_name)
        };
        match callee {
            Callee::Qualified(owner, name) => {
                let candidates: Vec<usize> = self
                    .by_owner_name
                    .get(&(owner.clone(), name.clone()))
                    .map(|v| v.iter().copied().filter(|i| live(i)).collect())
                    .unwrap_or_default();
                if candidates.len() == 1 {
                    return Some(candidates[0]);
                }
                // `module::free_fn(…)`: match free fns in a file whose stem
                // is the module name.
                if owner.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                    let candidates: Vec<usize> = self
                        .by_name
                        .get(name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|i| live(i))
                                .filter(|&i| {
                                    self.fns[i].owner.is_none()
                                        && self.files[self.fns[i].file]
                                            .label
                                            .ends_with(&format!("/{owner}.rs"))
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    if candidates.len() == 1 {
                        return Some(candidates[0]);
                    }
                }
                None
            }
            Callee::Bare(name) => {
                let all: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|v| v.iter().copied().filter(|i| live(i)).collect())
                    .unwrap_or_default();
                unique_preferring(&all, &self.fns, caller_file, caller_crate, &self.files)
            }
            Callee::Method(name) => {
                if COMMON_STD_METHODS.contains(&name.as_str()) {
                    return None;
                }
                let all: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|i| live(i))
                            .filter(|&i| self.fns[i].owner.is_some())
                            .collect()
                    })
                    .unwrap_or_default();
                unique_preferring(&all, &self.fns, caller_file, caller_crate, &self.files)
            }
        }
    }
}

/// Returns the unique candidate, preferring (in order) same-file, then
/// same-crate, then workspace-wide uniqueness; `None` when still ambiguous.
fn unique_preferring(
    candidates: &[usize],
    fns: &[FnDef],
    caller_file: usize,
    caller_crate: &str,
    files: &[SourceFile],
) -> Option<usize> {
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller_file)
        .collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    if same_file.len() > 1 {
        return None;
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| files[fns[i].file].crate_name == caller_crate)
        .collect();
    if same_crate.len() == 1 {
        return Some(same_crate[0]);
    }
    if same_crate.len() > 1 {
        return None;
    }
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }
    None
}

/// A token: an identifier, or a punctuation fragment (`::` is one token).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    /// 0-based source line.
    line: usize,
    text: String,
    is_ident: bool,
}

fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line_no, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: line_no,
                    text: chars[start..i].iter().collect(),
                    is_ident: true,
                });
                continue;
            }
            if c.is_ascii_digit() {
                // Numeric literal (possibly with suffix); a single token.
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: line_no,
                    text: "0".to_string(),
                    is_ident: false,
                });
                continue;
            }
            if c == ':' && chars.get(i + 1) == Some(&':') {
                toks.push(Tok {
                    line: line_no,
                    text: "::".to_string(),
                    is_ident: false,
                });
                i += 2;
                continue;
            }
            toks.push(Tok {
                line: line_no,
                text: c.to_string(),
                is_ident: false,
            });
            i += 1;
        }
    }
    toks
}

/// What an opened brace belongs to.
enum Scope {
    /// A function body; holds the index into the result vector.
    Fn(usize),
    /// An `impl` block with its (possibly unresolvable) type name.
    Impl(Option<String>),
    Other,
}

/// Item header being assembled (between a `fn`/`impl` keyword and the
/// opening brace or a terminating `;`).
enum Pending {
    None,
    /// Saw `fn`; the next identifier is the name.
    FnKeyword,
    /// Full fn header captured; waiting for `{` or `;`.
    FnHeader {
        name: String,
        line: usize,
    },
    /// Inside an `impl` header; tracks angle-bracket depth and the current
    /// candidate type name (the last angle-depth-0 identifier before any
    /// `where` clause wins, which handles both `impl Foo` and
    /// `impl Trait for Foo`).
    ImplHeader {
        angle: i32,
        owner: Option<String>,
        in_where: bool,
    },
}

fn extract_fns(file_idx: usize, lines: &[Line]) -> Vec<FnDef> {
    let toks = tokenize(lines);
    let mut fns: Vec<FnDef> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    // `;` only terminates a pending header outside parens/brackets
    // (array types like `[u8; 4]` appear inside signatures).
    let mut paren = 0i32;
    let mut bracket = 0i32;

    let innermost_fn = |scopes: &[Scope]| -> Option<usize> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(i) => Some(*i),
            _ => None,
        })
    };
    let impl_owner = |scopes: &[Scope]| -> Option<String> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(owner) => Some(owner.clone()),
            _ => None,
        })?
    };

    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        match tok.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            _ => {}
        }

        // Header state machine.
        match (&mut pending, tok.text.as_str(), tok.is_ident) {
            (Pending::None, "fn", _) => {
                pending = Pending::FnKeyword;
                i += 1;
                continue;
            }
            (Pending::None, "impl", _) => {
                pending = Pending::ImplHeader {
                    angle: 0,
                    owner: None,
                    in_where: false,
                };
                i += 1;
                continue;
            }
            (Pending::FnKeyword, _, true) => {
                pending = Pending::FnHeader {
                    name: tok.text.clone(),
                    line: tok.line,
                };
                i += 1;
                continue;
            }
            (
                Pending::ImplHeader {
                    angle,
                    owner,
                    in_where,
                },
                text,
                is_ident,
            ) => {
                match text {
                    "<" => *angle += 1,
                    ">" => *angle = (*angle - 1).max(0),
                    "{" | ";" => {}
                    "where" if *angle == 0 => *in_where = true,
                    _ if is_ident && *angle == 0 && !*in_where && text != "for" => {
                        *owner = Some(text.to_string());
                    }
                    _ => {}
                }
                if text != "{" && !(text == ";" && paren == 0 && bracket == 0) {
                    i += 1;
                    continue;
                }
            }
            _ => {}
        }

        match tok.text.as_str() {
            "{" => {
                let scope = match std::mem::replace(&mut pending, Pending::None) {
                    Pending::FnHeader { name, line } => {
                        let owner = impl_owner(&scopes);
                        fns.push(FnDef {
                            name,
                            owner,
                            file: file_idx,
                            line: line + 1,
                            body: (line + 1, line + 1),
                            in_test: lines.get(line).is_some_and(|l| l.in_test),
                            calls: Vec::new(),
                        });
                        Scope::Fn(fns.len() - 1)
                    }
                    Pending::ImplHeader { owner, .. } => Scope::Impl(owner),
                    _ => Scope::Other,
                };
                scopes.push(scope);
            }
            "}" => {
                if let Some(Scope::Fn(idx)) = scopes.pop() {
                    fns[idx].body.1 = tok.line + 1;
                }
            }
            ";" if paren == 0 && bracket == 0 => {
                // Trait method declaration or other bodiless item.
                pending = Pending::None;
            }
            _ => {}
        }

        // Call-site extraction: ident directly followed by `(`.
        if tok.is_ident
            && !KEYWORDS.contains(&tok.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
        {
            if let Some(fn_idx) = innermost_fn(&scopes) {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let callee = match prev.map(|p| p.text.as_str()) {
                    Some(".") => Some(Callee::Method(tok.text.clone())),
                    Some("::") => {
                        let seg = i.checked_sub(2).map(|p| &toks[p]);
                        match seg {
                            Some(s) if s.is_ident => {
                                let owner = if s.text == "Self" {
                                    impl_owner(&scopes)
                                } else if KEYWORDS.contains(&s.text.as_str()) {
                                    None
                                } else {
                                    Some(s.text.clone())
                                };
                                owner.map(|o| Callee::Qualified(o, tok.text.clone()))
                            }
                            _ => None,
                        }
                    }
                    _ => Some(Callee::Bare(tok.text.clone())),
                };
                if let Some(callee) = callee {
                    fns[fn_idx].calls.push(CallSite {
                        line: tok.line + 1,
                        callee,
                    });
                }
            }
        }
        i += 1;
    }

    // Unterminated scopes (should not happen on rustc-accepted code): close
    // at EOF so spans stay well-formed.
    let eof = lines.len();
    for scope in scopes {
        if let Scope::Fn(idx) = scope {
            fns[idx].body.1 = eof;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_one(source: &str) -> Workspace {
        let mut ws = Workspace::new();
        ws.add_file("test.rs", "alpha", source);
        ws.build_index();
        ws
    }

    #[test]
    fn extracts_free_and_impl_fns_with_spans() {
        let src = "\
pub fn alpha(x: u64) -> u64 {
    x + 1
}

struct Thing;

impl Thing {
    fn beta(&self) -> u64 {
        alpha(2)
    }
}

impl std::fmt::Display for Thing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"thing\")
    }
}
";
        let ws = ws_one(src);
        let names: Vec<(&str, Option<&str>)> = ws
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha", None),
                ("beta", Some("Thing")),
                ("fmt", Some("Thing"))
            ]
        );
        assert_eq!(ws.fns[0].body, (1, 3));
        assert_eq!(ws.fns[1].body, (8, 10));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "\
trait Policy {
    fn decide(&self, x: u64) -> u64;
    fn name(&self) -> &'static str {
        \"default\"
    }
}
";
        let ws = ws_one(src);
        // Only the default method has a body and is extracted.
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["name"]);
    }

    #[test]
    fn array_type_semicolon_does_not_cancel_a_signature() {
        let src = "\
fn digest(bytes: [u8; 4]) -> u64 {
    helper(bytes)
}
fn helper(_b: [u8; 4]) -> u64 {
    0
}
";
        let ws = ws_one(src);
        assert_eq!(ws.fns.len(), 2);
        assert_eq!(ws.fns[0].calls.len(), 1);
        assert_eq!(ws.fns[0].calls[0].callee, Callee::Bare("helper".into()));
    }

    #[test]
    fn call_kinds_are_classified() {
        let src = "\
struct S;
impl S {
    fn run(&self) {
        helper();
        self.step();
        S::assoc();
        Self::assoc();
        module::free_fn();
        not_a_macro!();
        let v = vec![1];
        drop(v);
    }
    fn step(&self) {}
    fn assoc() {}
}
fn helper() {}
";
        let ws = ws_one(src);
        let run = &ws.fns[0];
        assert_eq!(run.name, "run");
        let callees: Vec<&Callee> = run.calls.iter().map(|c| &c.callee).collect();
        assert!(callees.contains(&&Callee::Bare("helper".into())));
        assert!(callees.contains(&&Callee::Method("step".into())));
        assert!(callees.contains(&&Callee::Qualified("S".into(), "assoc".into())));
        // Self:: resolves to the impl owner.
        assert_eq!(
            callees
                .iter()
                .filter(|c| ***c == Callee::Qualified("S".into(), "assoc".into()))
                .count(),
            2
        );
        assert!(callees.contains(&&Callee::Qualified("module".into(), "free_fn".into())));
        // Macros are not calls.
        assert!(!callees.iter().any(|c| c.name() == "not_a_macro"));
        assert!(!callees.iter().any(|c| c.name() == "vec"));
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate_then_unique() {
        let mut ws = Workspace::new();
        ws.add_file(
            "a/lib.rs",
            "alpha",
            "fn caller() { shared(); only_b(); ambiguous(); }\nfn shared() {}\nfn ambiguous() {}\n",
        );
        ws.add_file(
            "b/lib.rs",
            "beta",
            "pub fn shared() {}\npub fn only_b() {}\npub fn ambiguous() {}\n",
        );
        ws.add_dep("alpha", "beta");
        ws.build_index();
        let caller = 0;
        let resolve = |name: &str| ws.resolve(caller, &Callee::Bare(name.to_string()));
        // Same-file wins over the beta definition.
        assert_eq!(resolve("shared"), Some(1));
        // Unique in the workspace.
        let only_b = resolve("only_b").expect("resolves");
        assert_eq!(ws.fns[only_b].file, 1);
        // Two candidates in different crates with none preferred: but the
        // same-crate rule picks alpha's.
        assert_eq!(resolve("ambiguous"), Some(2));
    }

    #[test]
    fn dependency_direction_gates_resolution() {
        let mut ws = Workspace::new();
        ws.add_file("a/lib.rs", "alpha", "fn go() { tool(); }\n");
        ws.add_file("b/lib.rs", "bench", "pub fn tool() {}\n");
        // bench depends on alpha, not the other way round: alpha must not
        // resolve into bench.
        ws.add_dep("bench", "alpha");
        ws.build_index();
        assert_eq!(ws.resolve(0, &Callee::Bare("tool".into())), None);
    }

    #[test]
    fn method_resolution_requires_a_unique_owner_candidate() {
        let src = "\
struct A;
struct B;
impl A { fn tick(&self) {} }
impl B { fn tick(&self) {} }
impl A {
    fn run(&self) {
        self.tick();
        self.unique_method();
    }
    fn unique_method(&self) {}
}
";
        let ws = ws_one(src);
        let run = ws.fns.iter().position(|f| f.name == "run").expect("run");
        // `tick` is ambiguous even in one file: no edge.
        assert_eq!(ws.resolve(run, &Callee::Method("tick".into())), None);
        let target = ws
            .resolve(run, &Callee::Method("unique_method".into()))
            .expect("unique method resolves");
        assert_eq!(ws.fns[target].name, "unique_method");
    }

    #[test]
    fn common_std_method_names_never_resolve_as_methods() {
        let src = "\
struct Req;
impl Req {
    fn min(_c: u64) -> Self { Req }
    fn run(&self) {
        let _ = 3u64.min(4);
        let _ = Req::min(0);
    }
}
";
        let ws = ws_one(src);
        let run = ws.fns.iter().position(|f| f.name == "run").expect("run");
        // `.min(…)` is std even though a unique workspace `min` exists…
        assert_eq!(ws.resolve(run, &Callee::Method("min".into())), None);
        // …but the qualified spelling still gets its edge.
        let q = ws
            .resolve(run, &Callee::Qualified("Req".into(), "min".into()))
            .expect("qualified resolves");
        assert_eq!(ws.fns[q].name, "min");
    }

    #[test]
    fn test_region_fns_are_indexed_but_never_resolved_to() {
        let src = "\
fn caller() { fixture(); }
#[cfg(test)]
mod tests {
    pub fn fixture() {}
}
";
        let ws = ws_one(src);
        assert!(ws.fns.iter().any(|f| f.name == "fixture" && f.in_test));
        assert_eq!(ws.resolve(0, &Callee::Bare("fixture".into())), None);
    }

    #[test]
    fn nested_fns_own_their_lines() {
        let src = "\
fn outer() -> u64 {
    fn inner(x: u64) -> u64 {
        x * 2
    }
    inner(21)
}
";
        let ws = ws_one(src);
        let file = &ws.files[0];
        let outer = ws.fns.iter().position(|f| f.name == "outer").expect("o");
        let inner = ws.fns.iter().position(|f| f.name == "inner").expect("i");
        assert_eq!(file.line_owner[0], Some(outer)); // fn outer line
        assert_eq!(file.line_owner[2], Some(inner)); // x * 2
        assert_eq!(file.line_owner[4], Some(outer)); // inner(21)
    }

    #[test]
    fn hotpath_regions_are_marked_per_line() {
        let src = "\
fn f() {
    // xtask-hotpath: begin
    let x = 1;
    // xtask-hotpath: end
    let y = 2;
}
";
        let ws = ws_one(src);
        let hot = &ws.files[0].hotpath;
        assert!(hot[2], "inside region");
        assert!(!hot[4], "after region");
    }
}

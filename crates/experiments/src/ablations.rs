//! **A1–A3 — ablations** over the design choices DESIGN.md calls out:
//! state features (A1), reward shaping (A2), and the exploration
//! schedule (A3). Each variant trains and evaluates on the mixed
//! scenario so adaptation pressure is present.

use governors::Governor;
use rlpm::{RlConfig, RlGovernor};
use soc::{Soc, SocConfig};
use workload::ScenarioKind;

use crate::par::parallel_map;
use crate::table::{fmt_f64, Table};
use crate::{cache, run, RunConfig, TrainingProtocol};

/// Result of one ablation variant.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Frozen-evaluation energy per QoS unit.
    pub energy_per_qos: f64,
    /// Frozen-evaluation QoS violations.
    pub violations: u64,
    /// Frozen-evaluation delivered QoS ratio.
    pub qos_ratio: f64,
}

/// Shared protocol for all ablations.
#[derive(Debug, Clone, Copy)]
pub struct AblationConfig {
    /// Training protocol per variant.
    pub training: TrainingProtocol,
    /// Frozen evaluation length (simulated seconds).
    pub eval_secs: u64,
    /// Seed.
    pub seed: u64,
    /// Scenario to train/evaluate on.
    pub scenario: ScenarioKind,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            training: TrainingProtocol::default(),
            eval_secs: 120,
            seed: 17,
            scenario: ScenarioKind::Mixed,
        }
    }
}

impl AblationConfig {
    /// Short protocol for tests.
    pub fn quick() -> Self {
        AblationConfig {
            training: TrainingProtocol::quick(),
            eval_secs: 15,
            seed: 17,
            scenario: ScenarioKind::Video,
        }
    }
}

/// Trains and evaluates one labelled configuration variant; `None` for
/// an invalid SoC config (the row is then dropped). When the cache is
/// enabled the finished row is looked up / stored under a key covering
/// the full variant `RlConfig`, so re-running a sweep with one changed
/// variant only recomputes that variant.
fn evaluate_variant(
    soc_config: &SocConfig,
    config: &AblationConfig,
    label: &str,
    rl: RlConfig,
) -> Option<AblationRow> {
    if !cache::is_enabled() {
        return evaluate_variant_uncached(soc_config, config, label, rl);
    }
    let key = cache::Key::new("abrow")
        .debug(soc_config)
        .debug(&rl)
        .str(label)
        .str(config.scenario.name())
        .debug(&config.training)
        .u64(config.eval_secs)
        .u64(config.seed)
        .finish();
    let bytes = cache::get_or_compute("abrow", key, || {
        let row = evaluate_variant_uncached(soc_config, config, label, rl.clone())?;
        let mut enc = cache::Enc::new();
        enc.str(&row.label);
        enc.f64(row.energy_per_qos);
        enc.u64(row.violations);
        enc.f64(row.qos_ratio);
        Some(enc.finish())
    })?;
    let mut dec = cache::Dec::new(&bytes);
    let decoded = (|| {
        let row = AblationRow {
            label: dec.str()?,
            energy_per_qos: dec.f64()?,
            violations: dec.u64()?,
            qos_ratio: dec.f64()?,
        };
        if !dec.finished() {
            return None;
        }
        Some(row)
    })();
    decoded.or_else(|| evaluate_variant_uncached(soc_config, config, label, rl))
}

fn evaluate_variant_uncached(
    soc_config: &SocConfig,
    config: &AblationConfig,
    label: &str,
    rl: RlConfig,
) -> Option<AblationRow> {
    rl.validate();
    let mut policy = RlGovernor::new(rl, config.seed);
    let mut soc = Soc::new(soc_config.clone()).ok()?;
    let mut scenario = config.scenario.build(config.seed.wrapping_add(0xab));
    for _ in 0..config.training.episodes {
        run(
            &mut soc,
            scenario.as_mut(),
            &mut policy,
            RunConfig::seconds(config.training.episode_secs),
        );
        soc.reset();
        scenario.reset();
        policy.reset();
    }
    policy.set_frozen(true);
    policy.reset();
    let metrics = run(
        &mut soc,
        scenario.as_mut(),
        &mut policy,
        RunConfig::seconds(config.eval_secs),
    );
    Some(AblationRow {
        label: label.to_owned(),
        energy_per_qos: metrics.energy_per_qos,
        violations: metrics.qos.violations,
        qos_ratio: metrics.qos.qos_ratio(),
    })
}

fn run_variants(
    soc_config: &SocConfig,
    config: &AblationConfig,
    variants: Vec<(String, RlConfig)>,
) -> Vec<AblationRow> {
    let soc_config_owned = soc_config.clone();
    let job_config = *config;
    let rows = parallel_map("ablations", variants, move |(label, rl)| {
        evaluate_variant(&soc_config_owned, &job_config, &label, rl)
    });
    rows.into_iter().flatten().collect()
}

/// A1 — state-feature ablation: remove the trend feature, the QoS
/// feature, or coarsen utilisation.
pub fn a1_state_features(soc_config: &SocConfig, config: &AblationConfig) -> Vec<AblationRow> {
    let base = RlConfig::for_soc(soc_config);
    let variants = vec![
        ("full state (proposed)".to_owned(), base.clone()),
        (
            "no trend feature".to_owned(),
            RlConfig {
                trend_bins: 1,
                ..base.clone()
            },
        ),
        (
            "no QoS feature".to_owned(),
            RlConfig {
                qos_bins: 1,
                ..base.clone()
            },
        ),
        (
            "coarse utilisation (2 bins)".to_owned(),
            RlConfig {
                util_bins: 2,
                ..base.clone()
            },
        ),
        (
            "coarse level feature (4 bins)".to_owned(),
            RlConfig {
                level_bins: 4,
                ..base
            },
        ),
    ];
    run_variants(soc_config, config, variants)
}

/// A2 — reward-shaping ablation: sweep the violation penalty λ.
pub fn a2_reward_shaping(soc_config: &SocConfig, config: &AblationConfig) -> Vec<AblationRow> {
    let base = RlConfig::for_soc(soc_config);
    let variants = [0.0, 0.5, 1.5, 3.0, 6.0]
        .into_iter()
        .map(|lambda| {
            (
                format!("violation penalty λ = {lambda}"),
                RlConfig {
                    w_violation: lambda,
                    ..base.clone()
                },
            )
        })
        .collect();
    run_variants(soc_config, config, variants)
}

/// A3 — exploration-schedule ablation.
pub fn a3_exploration(soc_config: &SocConfig, config: &AblationConfig) -> Vec<AblationRow> {
    let base = RlConfig::for_soc(soc_config);
    let variants = vec![
        ("decaying ε (proposed)".to_owned(), base.clone()),
        (
            "constant ε = 0.1".to_owned(),
            RlConfig {
                epsilon0: 0.1,
                epsilon_min: 0.1,
                epsilon_decay: 1.0,
                ..base.clone()
            },
        ),
        (
            "near-greedy ε = 0.02".to_owned(),
            RlConfig {
                epsilon0: 0.02,
                epsilon_min: 0.02,
                epsilon_decay: 1.0,
                ..base.clone()
            },
        ),
        (
            "high constant ε = 0.4".to_owned(),
            RlConfig {
                epsilon0: 0.4,
                epsilon_min: 0.4,
                epsilon_decay: 1.0,
                ..base
            },
        ),
    ];
    run_variants(soc_config, config, variants)
}

/// A4 — algorithm ablation: the paper's plain Q-learning versus the
/// double/on-policy variants.
pub fn a4_algorithm(soc_config: &SocConfig, config: &AblationConfig) -> Vec<AblationRow> {
    let base = RlConfig::for_soc(soc_config);
    let variants = rlpm::Algorithm::ALL
        .into_iter()
        .map(|algorithm| {
            (
                algorithm.name().to_owned(),
                RlConfig {
                    algorithm,
                    ..base.clone()
                },
            )
        })
        .collect();
    run_variants(soc_config, config, variants)
}

/// Renders ablation rows.
pub fn ablation_table(title: &str, rows: &[AblationRow]) -> Table {
    let mut table = Table::new(title, ["variant", "energy/QoS", "violations", "QoS ratio"]);
    for r in rows {
        table.push([
            r.label.clone(),
            fmt_f64(r.energy_per_qos),
            r.violations.to_string(),
            fmt_f64(r.qos_ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_variants_run_and_render() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let rows = a1_state_features(&soc_config, &AblationConfig::quick());
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.energy_per_qos.is_finite()));
        let table = ablation_table("A1", &rows);
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn a2_sweep_runs() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let rows = a2_reward_shaping(&soc_config, &AblationConfig::quick());
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn a3_schedules_run() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let rows = a3_exploration(&soc_config, &AblationConfig::quick());
        assert_eq!(rows.len(), 4);
    }
}

//! Decision-latency models for the software and hardware policies.
//!
//! The paper's latency claims compare the same Q-learning decision made
//! (a) by the CPU in software and (b) by the FPGA engine. Both sides are
//! parameterised here:
//!
//! * **Software** — an instruction/IPC model of the governor routine on
//!   an in-order LITTLE core at the current OPP, plus DRAM stalls that do
//!   *not* scale with core frequency (which is why the software penalty
//!   explodes at low OPPs — exactly when a power governor runs slow);
//! * **Hardware** — the engine's deterministic cycle count at the fabric
//!   clock, plus the memory-mapped bus transactions of the driver flow.

use simkit::SimDuration;

use crate::{AxiLiteBus, MmioDevice, PolicyEngine};

/// Instruction-level latency model of the software policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwLatencyModel {
    /// Instructions for one decision (state encoding + Q-row scan +
    /// argmax + bookkeeping).
    pub decide_instructions: u64,
    /// Instructions for one TD update.
    pub update_instructions: u64,
    /// Sustained IPC of the core running the governor (in-order LITTLE).
    pub ipc: f64,
    /// Off-core memory stalls per decision (Q-row lines + state).
    pub decide_mem_misses: u64,
    /// Off-core memory stalls per update.
    pub update_mem_misses: u64,
    /// Wall-clock cost of one memory stall (frequency-independent).
    pub mem_latency: SimDuration,
}

impl SwLatencyModel {
    /// Calibrated for a ~25-action Q-policy on a Cortex-A7-class core.
    pub fn little_core(num_actions: usize) -> Self {
        SwLatencyModel {
            // Encoding (~300) + row scan (~6 instr/action) + misc (~80).
            decide_instructions: 300 + 6 * num_actions as u64 + 80,
            // TD arithmetic + schedule bookkeeping.
            update_instructions: 170,
            ipc: 0.8,
            decide_mem_misses: 8,
            update_mem_misses: 4,
            mem_latency: SimDuration::from_micros(0).max(SimDuration::from_secs_f64(110e-9)),
        }
    }

    fn time(&self, instructions: u64, misses: u64, freq_hz: u64) -> SimDuration {
        assert!(freq_hz > 0, "core frequency must be positive");
        let cycles = instructions as f64 / self.ipc;
        let compute = SimDuration::from_secs_f64(cycles / freq_hz as f64);
        compute + self.mem_latency * misses
    }

    /// Latency of one decision on a core at `freq_hz`.
    pub fn decision_latency(&self, freq_hz: u64) -> SimDuration {
        self.time(self.decide_instructions, self.decide_mem_misses, freq_hz)
    }

    /// Latency of one TD update on a core at `freq_hz`.
    pub fn update_latency(&self, freq_hz: u64) -> SimDuration {
        self.time(self.update_instructions, self.update_mem_misses, freq_hz)
    }

    /// Latency of the full per-epoch routine (update + decision).
    pub fn epoch_latency(&self, freq_hz: u64) -> SimDuration {
        self.decision_latency(freq_hz) + self.update_latency(freq_hz)
    }
}

/// Latency model of the hardware policy behind its bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwLatencyModel {
    /// One engine decision, fabric cycles × clock.
    pub decide_compute: SimDuration,
    /// One engine update.
    pub update_compute: SimDuration,
    /// One bus read.
    pub bus_read: SimDuration,
    /// One bus write.
    pub bus_write: SimDuration,
}

/// Driver flow: register transactions per decision (`STATE`, `CTRL`
/// writes; `STATUS`, `ACTION` reads).
pub const DECIDE_WRITES: u64 = 2;
/// Reads per decision.
pub const DECIDE_READS: u64 = 2;
/// Writes per update (`STATE`, `PREV_ACTION`, `NEXT_STATE`, `REWARD`,
/// `CTRL`).
pub const UPDATE_WRITES: u64 = 5;
/// Reads per update (`STATUS`).
pub const UPDATE_READS: u64 = 1;

impl HwLatencyModel {
    /// Derives the model from a configured engine and bus.
    pub fn new<D: MmioDevice>(engine: &PolicyEngine, bus: &AxiLiteBus<D>) -> Self {
        let clk = engine.config().clock_hz as f64;
        HwLatencyModel {
            decide_compute: SimDuration::from_secs_f64(engine.decision_cycles() as f64 / clk),
            update_compute: SimDuration::from_secs_f64(engine.update_cycles() as f64 / clk),
            bus_read: bus.read_latency(),
            bus_write: bus.write_latency(),
        }
    }

    /// Compute-only decision latency (the "up to 40×" numerator's
    /// denominator).
    pub fn decision_compute(&self) -> SimDuration {
        self.decide_compute
    }

    /// End-to-end decision latency including the driver's register
    /// traffic.
    pub fn decision_end_to_end(&self) -> SimDuration {
        self.decide_compute + self.bus_write * DECIDE_WRITES + self.bus_read * DECIDE_READS
    }

    /// End-to-end update latency.
    pub fn update_end_to_end(&self) -> SimDuration {
        self.update_compute + self.bus_write * UPDATE_WRITES + self.bus_read * UPDATE_READS
    }

    /// End-to-end per-epoch routine (update + decision).
    pub fn epoch_end_to_end(&self) -> SimDuration {
        self.decision_end_to_end() + self.update_end_to_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HwConfig, PolicyMmio};
    use rlpm::RlConfig;
    use soc::SocConfig;

    fn models() -> (SwLatencyModel, HwLatencyModel) {
        let rl = RlConfig::for_soc(&SocConfig::odroid_xu3_like().unwrap());
        let engine = PolicyEngine::new(HwConfig::default(), &rl);
        let hw = {
            let bus = AxiLiteBus::new(PolicyMmio::new(engine.clone()));
            HwLatencyModel::new(&engine, &bus)
        };
        (SwLatencyModel::little_core(rl.num_actions()), hw)
    }

    #[test]
    fn software_is_slower_at_lower_opp() {
        let (sw, _) = models();
        let slow = sw.decision_latency(200_000_000);
        let fast = sw.decision_latency(1_400_000_000);
        assert!(slow > fast);
        // Memory stalls do not scale with frequency, so the ratio is
        // less than the 7x frequency ratio.
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!(ratio > 2.0 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn hardware_compute_is_sub_microsecond() {
        let (_, hw) = models();
        assert!(hw.decision_compute() < SimDuration::from_micros(1));
    }

    #[test]
    fn bus_overhead_dominates_hardware_compute() {
        let (_, hw) = models();
        let overhead = hw.decision_end_to_end() - hw.decision_compute();
        assert!(
            overhead > hw.decision_compute(),
            "interface {} vs compute {}",
            overhead,
            hw.decision_compute()
        );
    }

    #[test]
    fn speedup_shape_matches_the_paper() {
        // The reproduction targets: compute-only speedup at the lowest
        // software OPP in the tens (paper: "up to 40x"), end-to-end
        // speedup averaged over the OPP ladder a small single-digit
        // factor (journal: 3.92x).
        let (sw, hw) = models();
        let max_speedup =
            sw.decision_latency(200_000_000).as_secs_f64() / hw.decision_compute().as_secs_f64();
        assert!(
            max_speedup > 25.0 && max_speedup < 60.0,
            "compute-only max speedup {max_speedup}"
        );

        let ladder: Vec<u64> = (2..=14).map(|m| m * 100_000_000).collect();
        let mean_sw: f64 = ladder
            .iter()
            .map(|&f| sw.decision_latency(f).as_secs_f64())
            .sum::<f64>()
            / ladder.len() as f64;
        let avg_speedup = mean_sw / hw.decision_end_to_end().as_secs_f64();
        assert!(
            avg_speedup > 2.5 && avg_speedup < 6.0,
            "end-to-end average speedup {avg_speedup}"
        );
    }

    #[test]
    fn epoch_latency_is_sum_of_parts() {
        let (sw, hw) = models();
        let f = 600_000_000;
        assert_eq!(
            sw.epoch_latency(f),
            sw.decision_latency(f) + sw.update_latency(f)
        );
        assert_eq!(
            hw.epoch_end_to_end(),
            hw.decision_end_to_end() + hw.update_end_to_end()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let (sw, _) = models();
        sw.decision_latency(0);
    }
}

//! The closed control loop: scenario → SoC → QoS accounting → governor.

use governors::{Governor, QosFeedback, SystemState};
use simkit::trace::Trace;
use simkit::{obs, FaultCounts, SimDuration};
use soc::{LevelRequest, Soc};
use workload::{QosReport, QosTracker, Scenario};

use crate::resilience::FaultHarness;

/// Closed-loop runs completed in this process.
static RUNS: obs::Counter = obs::Counter::new("runner.runs");
/// Headline metric of the most recent completed run (J per QoS unit).
static LAST_ENERGY_PER_QOS: obs::Gauge = obs::Gauge::new("runner.last_energy_per_qos");

/// Parameters of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Record a per-epoch trace (frequency levels, power, QoS) for
    /// figure regeneration. Costs memory proportional to epochs.
    pub record_trace: bool,
}

impl RunConfig {
    /// A run of the given number of simulated seconds, without tracing.
    pub fn seconds(secs: u64) -> Self {
        RunConfig {
            duration: SimDuration::from_secs(secs),
            record_trace: false,
        }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Total energy (J).
    pub energy_j: f64,
    /// Final QoS accounting.
    pub qos: QosReport,
    /// The headline metric: energy per delivered QoS unit (J/unit).
    pub energy_per_qos: f64,
    /// Mean power draw (W).
    pub avg_power_w: f64,
    /// DVFS transitions performed.
    pub transitions: u64,
    /// Epochs simulated.
    pub epochs: u64,
    /// Jobs submitted by the scenario.
    pub jobs_submitted: u64,
    /// Mean per-cluster frequency level over the run, normalised to
    /// `[0, 1]` of each table.
    pub mean_level_frac: Vec<f64>,
    /// Core-seconds spent clock-gated (zero unless the SoC has cpuidle).
    pub idle_gated_core_s: f64,
    /// Core-seconds spent power-collapsed.
    pub idle_collapsed_core_s: f64,
    /// Epochs a watchdog fallback decided instead of the primary policy
    /// (zero without a fault harness or watchdog).
    pub watchdog_engagements: u64,
    /// Fault events injected during the run (zero without a harness).
    pub fault_counts: FaultCounts,
    /// Q-table SEUs the governor's recovery machinery detected.
    pub seus_detected: u64,
    /// Q-table reloads performed to recover from detected SEUs.
    pub table_reloads: u64,
    /// Optional per-epoch trace: columns `level_<cluster>`,
    /// `util_<cluster>`, `power_w`, `qos_units`.
    pub trace: Option<Trace>,
}

/// Runs `governor` on `scenario` for `config.duration`, starting from the
/// SoC's current state (callers reset the SoC for independent runs; the
/// training loop deliberately does not).
///
/// The loop matches the paper's control structure: at each epoch boundary
/// the governor observes the epoch just finished (utilisation, energy,
/// QoS feedback) and sets levels for the next epoch. The first epoch runs
/// at the lowest OPP.
pub fn run(
    soc: &mut Soc,
    scenario: &mut dyn Scenario,
    governor: &mut dyn Governor,
    config: RunConfig,
) -> RunMetrics {
    run_with_faults(soc, scenario, governor, config, None)
}

/// [`run`], with an optional fault harness injecting the deterministic
/// fault schedule described in `DESIGN.md` ("Robustness & fault model").
///
/// `None` is exactly [`run`]: the fault dispatch is skipped entirely, so
/// the output is bit-identical to the fault-free path. A harness whose
/// rates are all zero also reproduces the fault-free run bit-for-bit
/// (its plan draws nothing — see [`simkit::FaultPlan`]).
pub fn run_with_faults(
    soc: &mut Soc,
    scenario: &mut dyn Scenario,
    governor: &mut dyn Governor,
    config: RunConfig,
    mut faults: Option<&mut FaultHarness>,
) -> RunMetrics {
    let epoch = soc.config().epoch;
    // A duration shorter than one epoch saturates to a single epoch: the
    // control loop's unit of progress is the epoch, so the shortest
    // meaningful run is one of them.
    let epochs = (config.duration / epoch).max(1);
    let num_clusters = soc.config().clusters.len();

    let mut tracker = QosTracker::new(scenario.qos_spec());
    let mut request = LevelRequest::new(soc.clusters().iter().map(|c| c.level()).collect());
    let mut transitions = 0u64;
    let mut level_frac_sum = vec![0.0f64; num_clusters];
    let mut idle_gated_core_s = 0.0f64;
    let mut idle_collapsed_core_s = 0.0f64;
    let started_at = soc.now();
    let start_energy = soc.total_energy_j();
    let start_jobs = soc.jobs_submitted();
    let mut trace = config.record_trace.then(|| {
        let mut columns: Vec<String> = Vec::new();
        for c in 0..num_clusters {
            columns.push(format!("level_{c}"));
        }
        for c in 0..num_clusters {
            columns.push(format!("util_{c}"));
        }
        columns.push("power_w".into());
        columns.push("qos_units".into());
        Trace::new("run", columns)
    });

    let mut prev_snapshot = tracker.snapshot();
    // Reused across epochs: the report's per-cluster slots (and their
    // completed-job pools) and the observation's cluster buffer keep
    // their capacity, so the steady-state loop does not allocate.
    let mut report = soc::EpochReport {
        started_at: soc.now(),
        ended_at: soc.now(),
        clusters: Vec::new(),
        energy_j: 0.0,
    };
    let mut state = SystemState::new(
        soc::EpochObservation {
            at: soc.now(),
            clusters: Vec::new(),
            energy_j: 0.0,
        },
        QosFeedback::default(),
    );
    let mut epochs_done = 0u64;
    let _run_span = obs::span!("runner.run");
    for _ in 0..epochs {
        // xtask-hotpath: begin (per-epoch fault application, no allocation)
        if let Some(harness) = faults.as_deref_mut() {
            harness.begin_epoch(soc, &mut request);
        }
        // xtask-hotpath: end

        // Feed the next epoch's arrivals before running it.
        let from = soc.now();
        let to = from + epoch;
        for (at, job) in scenario.arrivals(from, to) {
            soc.schedule_job(at, job);
        }

        // The request is validated by construction (governors and the
        // fault harness only produce in-range levels); a rejection ends
        // the run with metrics covering the completed epochs.
        let Ok(()) = soc.run_epoch_into(&request, &mut report) else {
            break;
        };
        epochs_done += 1;
        tracker.observe_all(report.completed());
        let snapshot = tracker.snapshot();
        let epoch_units = snapshot.units - prev_snapshot.units;
        let epoch_max_units = snapshot.max_units - prev_snapshot.max_units;
        let epoch_violations = snapshot.violations - prev_snapshot.violations;
        prev_snapshot = snapshot;
        // Per-epoch QoS ratio: a cumulative ratio would let one bad epoch
        // poison the state signal for the rest of the episode.
        let epoch_qos_ratio = if epoch_max_units > 0.0 {
            (epoch_units / epoch_max_units).clamp(0.0, 1.0)
        } else {
            1.0
        };

        for ((r, cluster), frac) in report
            .clusters
            .iter()
            .zip(&soc.config().clusters)
            .zip(level_frac_sum.iter_mut())
        {
            transitions += u64::from(r.transitions);
            let max_level = cluster.opps.max_level().max(1);
            *frac += r.level as f64 / max_level as f64;
            idle_gated_core_s += r.idle_gated_s;
            idle_collapsed_core_s += r.idle_collapsed_s;
        }

        soc.observe_into(&report, &mut state.soc);
        state.qos = QosFeedback {
            qos_ratio: epoch_qos_ratio,
            units: epoch_units,
            violations: epoch_violations,
            pending_jobs: soc.queued_jobs(),
        };
        if let Some(trace) = trace.as_mut() {
            let mut row: Vec<f64> = Vec::with_capacity(2 * num_clusters + 2);
            for r in &report.clusters {
                row.push(r.level as f64);
            }
            for r in &report.clusters {
                row.push(r.util_max);
            }
            row.push(report.energy_j / epoch.as_secs_f64());
            row.push(epoch_units);
            trace.record(report.ended_at, row);
        }
        // The guard drops at the end of the loop body, so the span times
        // exactly the governor dispatch below.
        let _decide_span = obs::span!("runner.decide");
        // xtask-hotpath: begin (per-epoch decision dispatch, no allocation)
        match faults.as_deref_mut() {
            Some(harness) => {
                harness.decide(governor, &mut state, &mut request);
            }
            None => governor.decide_into(&state, &mut request),
        }
        // xtask-hotpath: end
    }

    let energy_j = soc.total_energy_j() - start_energy;
    let unfinished = soc.queued_jobs() + soc.pending_arrivals();
    let qos = tracker.finalize(unfinished);
    let wall = (soc.now() - started_at).as_secs_f64();
    let (seus_detected, table_reloads) = governor.seu_recovery_counts();
    let (watchdog_engagements, fault_counts) = match faults {
        Some(harness) => (harness.watchdog_engagements(), *harness.counts()),
        None => (0, FaultCounts::default()),
    };
    RUNS.inc();
    LAST_ENERGY_PER_QOS.set(qos.energy_per_qos(energy_j));

    RunMetrics {
        energy_j,
        energy_per_qos: qos.energy_per_qos(energy_j),
        qos,
        avg_power_w: if wall > 0.0 { energy_j / wall } else { 0.0 },
        transitions,
        epochs: epochs_done,
        jobs_submitted: soc.jobs_submitted() - start_jobs,
        mean_level_frac: level_frac_sum
            .iter()
            .map(|s| s / epochs_done.max(1) as f64)
            .collect(),
        idle_gated_core_s,
        idle_collapsed_core_s,
        watchdog_engagements,
        fault_counts,
        seus_detected,
        table_reloads,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::GovernorKind;
    use soc::SocConfig;
    use workload::ScenarioKind;

    fn soc() -> Soc {
        Soc::new(SocConfig::odroid_xu3_like().unwrap()).unwrap()
    }

    #[test]
    fn performance_beats_powersave_on_gaming_qos() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Gaming.build(1);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(10),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let save = run_with(GovernorKind::Powersave);
        assert!(
            perf.qos.qos_ratio() > 0.95,
            "performance delivers: {:?}",
            perf.qos
        );
        assert!(
            save.qos.qos_ratio() < 0.5,
            "powersave collapses: {:?}",
            save.qos
        );
        assert!(perf.energy_j > 2.0 * save.energy_j);
    }

    #[test]
    fn powersave_wins_energy_on_idle() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Idle.build(2);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(10),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let save = run_with(GovernorKind::Powersave);
        assert!(save.energy_j < perf.energy_j / 2.0);
        assert!(save.qos.qos_ratio() > 0.9, "idle is easy even at min OPP");
    }

    #[test]
    fn ondemand_lands_between_the_extremes_on_video() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Video.build(3);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(20),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let od = run_with(GovernorKind::Ondemand);
        assert!(
            od.energy_j < perf.energy_j,
            "ondemand saves energy vs performance"
        );
        assert!(
            od.qos.qos_ratio() > 0.85,
            "without giving up QoS: {:?}",
            od.qos
        );
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Camera.build(4);
        let mut governor = GovernorKind::Schedutil.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig::seconds(5),
        );
        assert_eq!(m.epochs, 250);
        assert!(m.energy_j > 0.0);
        assert!((m.avg_power_w - m.energy_j / 5.0).abs() < 1e-9);
        assert!(m.energy_per_qos >= m.energy_j / m.qos.max_units.max(1.0));
        assert_eq!(m.mean_level_frac.len(), 2);
        assert!(m.mean_level_frac.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(m.trace.is_none());
    }

    #[test]
    fn trace_records_one_row_per_epoch() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Audio.build(5);
        let mut governor = GovernorKind::Conservative.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig::seconds(2).with_trace(),
        );
        let trace = m.trace.expect("trace requested");
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.columns().len(), 6);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Mixed.build(7);
            let mut governor = GovernorKind::Interactive.build(soc.config());
            let m = run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(15),
            );
            (m.energy_j, m.qos, m.transitions)
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn sub_epoch_duration_saturates_to_one_epoch() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Idle.build(1);
        let mut governor = GovernorKind::Powersave.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig {
                duration: SimDuration::from_millis(1),
                record_trace: false,
            },
        );
        assert_eq!(m.epochs, 1, "shorter-than-epoch runs round up to one");
        assert_eq!(soc.now(), simkit::SimTime::ZERO + soc.config().epoch);
        assert!(m.energy_j > 0.0);
    }
}

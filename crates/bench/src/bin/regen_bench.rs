//! `regen-bench` — measures cold-vs-warm regeneration wall time for the
//! content-addressed simulation cache and maintains `BENCH_regen.json`.
//!
//! ```text
//! cargo run --release -p bench --bin regen-bench -- --baseline  # pin pre-cache numbers
//! cargo run --release -p bench --bin regen-bench                # update "current"
//! cargo run --release -p bench --bin regen-bench -- --repeat 5 --out /tmp/regen.json
//! ```
//!
//! The `baseline` section of an existing report is preserved verbatim
//! unless `--baseline` is given. See DESIGN.md § Scheduling & caching
//! for how to read the file.

use std::path::PathBuf;

use bench::regen::{measure, Report, SECTIONS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut record_baseline = false;
    let mut out = PathBuf::from("BENCH_regen.json");
    let mut label: Option<String> = None;
    let mut repeat = 3u32;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => record_baseline = true,
            "--out" => out = PathBuf::from(iter.next().expect("--out needs a path")),
            "--label" => label = Some(iter.next().expect("--label needs text").clone()),
            "--repeat" => {
                repeat = iter
                    .next()
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("--repeat needs a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: regen-bench [--baseline] [--repeat N] [--out PATH] [--label TEXT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| Report::from_json(&text))
        .unwrap_or_default();

    let label = label.unwrap_or_else(|| {
        if record_baseline {
            "cold rerun (cache ignored for timing reference)".to_owned()
        } else {
            "shared scheduler + content-addressed cache".to_owned()
        }
    });
    eprintln!("measuring regen sections [{SECTIONS}] cold vs warm, best of {repeat} ...");
    let measurement = measure(&bench::soc_under_test(), &label, repeat);
    eprintln!(
        "cold {:.3}s ({} misses) -> warm {:.3}s ({} hits): {:.1}x",
        measurement.cold_s,
        measurement.cold_misses,
        measurement.warm_s,
        measurement.warm_hits,
        measurement.speedup()
    );
    if record_baseline {
        report.baseline = Some(measurement.clone());
    }
    report.current = Some(measurement);

    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("(written to {})", out.display());
}

//! The Linux `schedutil` governor.
//!
//! Kernel algorithm (kernel/sched/cpufreq_schedutil.c): pick
//!
//! ```text
//! f_next = C · f_max · util_cap,   C = 1.25  ("headroom")
//! ```
//!
//! where `util_cap` is the capacity-normalised utilisation
//! (`util · f_cur / f_max` in this simulator's frequency-relative terms),
//! rounded up to an OPP. Frequency *reductions* are rate-limited
//! (`rate_limit_down_epochs`); increases apply immediately.

use soc::LevelRequest;

use crate::ondemand::level_for_freq_ceiling;
use crate::{Governor, SystemState};

/// `schedutil` tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedutilTunables {
    /// Headroom multiplier applied to the utilisation (kernel: 1.25).
    pub headroom: f64,
    /// Epochs to wait before applying a *lower* frequency.
    pub rate_limit_down_epochs: u32,
}

impl Default for SchedutilTunables {
    fn default() -> Self {
        SchedutilTunables {
            headroom: 1.25,
            rate_limit_down_epochs: 1,
        }
    }
}

/// Linux `schedutil`.
#[derive(Debug, Clone)]
pub struct Schedutil {
    tunables: SchedutilTunables,
    /// Epochs each cluster has been waiting to go down.
    down_wait: Vec<u32>,
}

impl Schedutil {
    /// Creates the governor for `num_clusters` clusters.
    pub fn new(tunables: SchedutilTunables, num_clusters: usize) -> Self {
        Schedutil {
            tunables,
            down_wait: vec![0; num_clusters],
        }
    }
}

impl Governor for Schedutil {
    fn name(&self) -> &str {
        "schedutil"
    }

    fn decide(&mut self, state: &SystemState) -> LevelRequest {
        let mut request = LevelRequest::new(Vec::new());
        self.decide_into(state, &mut request);
        request
    }

    fn decide_into(&mut self, state: &SystemState, request: &mut LevelRequest) {
        crate::governor::note_decision();
        let clusters = &state.soc.clusters;
        if self.down_wait.len() < clusters.len() {
            self.down_wait.resize(clusters.len(), 0);
        }
        let headroom = self.tunables.headroom;
        let rate_limit = self.tunables.rate_limit_down_epochs;
        request.levels.clear();
        request.levels.extend(
            clusters
                .iter()
                .zip(self.down_wait.iter_mut())
                .map(|(c, wait)| {
                    let (_, f_max) = c.freq_range_hz;
                    let util_cap = c.util_max * c.freq_hz as f64 / f_max as f64;
                    let f_next = (headroom * f_max as f64 * util_cap) as u64;
                    let target = level_for_freq_ceiling(c, f_next);
                    if target >= c.level {
                        *wait = 0;
                        target
                    } else if *wait < rate_limit {
                        *wait += 1;
                        c.level
                    } else {
                        *wait = 0;
                        target
                    }
                }),
        );
    }

    fn reset(&mut self) {
        self.down_wait.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::synthetic_state;
    use proptest::prelude::*;

    const LITTLE: (u64, u64) = (200_000_000, 1_400_000_000);

    fn state(util: f64, level: usize, freq: u64) -> SystemState {
        synthetic_state(&[(util, level, 13, freq, LITTLE)])
    }

    #[test]
    fn saturated_at_max_stays_at_max() {
        let mut g = Schedutil::new(Default::default(), 1);
        assert_eq!(g.decide(&state(1.0, 12, 1_400_000_000)).levels, vec![12]);
    }

    #[test]
    fn headroom_overprovisions() {
        let mut g = Schedutil::new(Default::default(), 1);
        // 60% at max capacity → f = 1.25·0.6·1.4G = 1.05 GHz → level
        // ceil((1050-200)/1200*12) = 9. The first decision is a down-move
        // and is rate-limited; the second applies.
        assert_eq!(g.decide(&state(0.60, 12, 1_400_000_000)).levels, vec![12]);
        assert_eq!(g.decide(&state(0.60, 12, 1_400_000_000)).levels, vec![9]);
    }

    #[test]
    fn capacity_invariance() {
        let mut g = Schedutil::new(Default::default(), 1);
        // 100% at 200 MHz = 14.3% capacity → f = 1.25·0.143·1.4G =
        // 250 MHz → level 1.
        assert_eq!(g.decide(&state(1.0, 0, 200_000_000)).levels, vec![1]);
    }

    #[test]
    fn down_moves_are_rate_limited() {
        let mut g = Schedutil::new(Default::default(), 1);
        // High level, idle: first decision holds, second drops.
        assert_eq!(g.decide(&state(0.0, 10, 1_200_000_000)).levels, vec![10]);
        assert_eq!(g.decide(&state(0.0, 10, 1_200_000_000)).levels, vec![0]);
    }

    #[test]
    fn up_moves_are_immediate() {
        let mut g = Schedutil::new(Default::default(), 1);
        // util_cap = 500/1400, f = 1.25·500 MHz = 625 MHz → level
        // ceil((625-200)/1200·12) = 5, applied on the very first decision.
        assert_eq!(g.decide(&state(1.0, 3, 500_000_000)).levels, vec![5]);
    }

    #[test]
    fn reset_clears_rate_limit() {
        let mut g = Schedutil::new(Default::default(), 1);
        g.decide(&state(0.0, 10, 1_200_000_000));
        g.reset();
        // After reset the hold starts again.
        assert_eq!(g.decide(&state(0.0, 10, 1_200_000_000)).levels, vec![10]);
    }

    proptest! {
        /// The chosen frequency always provides at least the measured
        /// demand (modulo the table top).
        #[test]
        fn prop_never_underprovisions(util in 0.0f64..=1.0, level in 0usize..13) {
            let freq = 200_000_000 + level as u64 * 100_000_000;
            let mut g = Schedutil::new(Default::default(), 1);
            // Run twice so rate limiting cannot mask the target.
            g.decide(&state(util, level, freq));
            let next = g.decide(&state(util, level, freq)).levels[0];
            let f_next = 200_000_000 + next as u64 * 100_000_000;
            let demand_hz = util * freq as f64;
            prop_assert!(
                f_next as f64 >= demand_hz.min(1_400_000_000.0) - 1.0,
                "chose {f_next} for demand {demand_hz}"
            );
        }
    }
}

//! Observability non-perturbation pin.
//!
//! The `obs` layer claims to be *read-only*: turning the feature on,
//! filling the global metrics registry, and attaching a decision-trace
//! sink must not change a single bit of simulator output. The golden-bits
//! test covers the feature-off configuration (CI runs it both ways via
//! feature unification); this test covers the stronger claim that even an
//! *active* sink leaves results untouched, and that the trace itself is
//! deterministic.
#![cfg(feature = "obs")]

use std::io::Write;
use std::sync::{Arc, Mutex};

use experiments::{run, train_rl_governor, RunConfig, RunMetrics, TrainingProtocol};
use rlpm::{DecisionSink, TraceFormat};
use soc::{Soc, SocConfig};
use workload::ScenarioKind;

/// A `Write` target whose bytes can be read back after the sink takes
/// ownership of it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

/// Trains and evaluates the RL policy with a fixed seed, optionally with
/// a CSV decision sink attached for the evaluation run.
fn evaluate(attach_sink: bool) -> (RunMetrics, Vec<u8>) {
    let cfg = SocConfig::odroid_xu3_like().expect("preset is valid");
    let seed = 7u64;
    let kind = ScenarioKind::Video;
    let mut policy = train_rl_governor(&cfg, kind, TrainingProtocol::quick(), seed);
    let buf = SharedBuf::default();
    if attach_sink {
        policy.set_decision_sink(Some(DecisionSink::new(buf.clone(), TraceFormat::Csv)));
    }
    let mut soc = Soc::new(cfg).expect("validated config");
    let mut scenario = kind.build(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let metrics = run(
        &mut soc,
        scenario.as_mut(),
        &mut policy,
        RunConfig::seconds(8),
    );
    (metrics, buf.contents())
}

/// The harness-resilience counters are part of every snapshot once
/// registered, pinned at zero while no failpoint fires: a sweep report
/// that *lacks* the columns (or shows non-zero with injection off) is a
/// regression in the supervision layer, not noise.
#[test]
fn harness_counters_are_registered_and_zero_without_failpoints() {
    experiments::register_harness_metrics();
    let snap = simkit::obs::snapshot();
    let csv = snap.to_csv();
    for name in ["sched.retries", "sched.quarantined", "cache.degraded"] {
        assert_eq!(
            snap.counters.get(name).copied(),
            Some(0),
            "{name} must be registered and zero when nothing fails"
        );
        assert!(
            csv.contains(name),
            "{name} missing from the MetricsSnapshot CSV:\n{csv}"
        );
    }
}

#[test]
fn active_sink_and_metrics_do_not_perturb_results() {
    simkit::obs::reset();
    let (plain, no_trace) = evaluate(false);
    let (traced, trace_a) = evaluate(true);
    assert!(no_trace.is_empty(), "no sink attached, no bytes expected");
    assert_eq!(
        plain, traced,
        "attaching a decision sink changed simulation results"
    );
    // The runs above exercised the instrumented code paths, so the global
    // registry must have observed them (obs is on in this configuration).
    let snap = simkit::obs::snapshot();
    assert!(!snap.is_empty(), "metrics registry stayed empty");

    // The trace itself replays bit-exactly from the same seed.
    let (_, trace_b) = evaluate(true);
    assert_eq!(trace_a, trace_b, "decision trace is nondeterministic");
    let text = String::from_utf8(trace_a).expect("trace is UTF-8");
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("epoch,state,explored,action,reward,q_delta"),
    );
    assert!(lines.count() >= 100, "expected one row per decision epoch");
}

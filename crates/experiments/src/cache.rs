//! Content-addressed cache for trained policies and evaluated cell
//! metrics.
//!
//! Every cacheable unit of work (a trained Q-table, an evaluated
//! `(scenario, policy, seed)` cell, a learning-curve seed, an ablation
//! row) is addressed by an FNV-1a-64 hash — the same primitive
//! [`rlpm::persist`] uses for its container checksum — over a canonical
//! encoding of everything that determines the result: scenario id,
//! policy id, seed, `RunConfig`, SoC config and a format-version salt
//! ([`CACHE_FORMAT_VERSION`]). The simulator is deterministic, so equal
//! keys imply bit-identical results; cache hits are therefore
//! byte-identical to cold computes (pinned by the `cache_identity`
//! integration test, the same discipline as `golden_bits`).
//!
//! Two layers sit behind [`get_or_compute`]:
//!
//! 1. an **in-memory memo** shared by every experiment in the process.
//!    Identical cells requested concurrently (E1 and E9 retraining the
//!    same policy, the five fault multipliers of one E9 arm) are
//!    *coalesced*: the first requester computes, later ones block until
//!    the bytes are ready. This is what deduplicates the flattened job
//!    graph the global scheduler executes.
//! 2. an **on-disk store** (one file per entry, `<kind>-<key>.bin`)
//!    inside a small checksummed envelope. A warm `regen-tables` run
//!    skips straight to CSV emission. Entries that are truncated,
//!    bit-flipped or carry an unknown envelope version are silently
//!    *evicted* and recomputed — corruption is a miss, never an error.
//!
//! The cache is **disabled by default** ([`configure`] turns it on);
//! with it off every call site takes the exact pre-cache code path, so
//! `--no-cache` behavior is bit-identical to a build without this
//! module. Invalidation is purely key-based: any change to a config
//! struct's `Debug` representation, to a seed derivation or to
//! [`CACHE_FORMAT_VERSION`] changes the key, and the stale entry is
//! simply never addressed again.
//!
//! **Degradation.** A directory that stops cooperating — disk full,
//! read-only, permissions ripped out from under us, or an injected
//! `cache/store` / `cache/load` failpoint — downgrades the disk layer
//! to memo-only *exactly once per configured directory*: a typed
//! [`CacheDegraded`] warning naming the failing path goes to stderr,
//! the `cache.degraded` obs counter ticks, and every later store/load
//! skips the disk. Results stay correct (the memo and recomputation
//! carry the run); nothing panics and nothing is silently lost.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rlpm::persist::fnv1a64;
use simkit::obs::Counter;

use crate::sched::lock;
use crate::RunMetrics;

/// Version salt folded into every cache key. Bump when the canonical
/// key encoding, a payload encoding, or anything else that silently
/// shifts cached semantics changes: old entries then become
/// unaddressable (and eventually unreferenced files), not wrong answers.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// On-disk entry envelope magic.
const ENVELOPE_MAGIC: &[u8; 8] = b"RLPMCACH";
/// On-disk envelope version (independent of the key salt: a mismatch
/// here means the *file layout* changed and the entry must be evicted).
const ENVELOPE_VERSION: u16 = 1;
const ENVELOPE_HEADER_LEN: usize = 8 + 2 + 8;

/// The active cache directory; `None` disables the cache entirely.
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static STORE_FAILURES: AtomicU64 = AtomicU64::new(0);
/// One-shot degradation latch: set on the first hard disk failure,
/// cleared by [`configure`] (a fresh directory gets a fresh chance).
static DEGRADED: AtomicBool = AtomicBool::new(false);

static OBS_HITS: Counter = Counter::new("cache.hits");
static OBS_MISSES: Counter = Counter::new("cache.misses");
static OBS_EVICTIONS: Counter = Counter::new("cache.evictions");
static OBS_DEGRADED: Counter = Counter::new("cache.degraded");

/// Typed warning emitted (once, to stderr) when the on-disk cache layer
/// downgrades to the in-memory memo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDegraded {
    /// The entry path whose store or load failed.
    pub path: PathBuf,
    /// The underlying failure, rendered.
    pub cause: String,
}

impl std::fmt::Display for CacheDegraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "on-disk cache degraded to in-memory memo ({} at {}); \
             results stay correct, later runs will recompute",
            self.cause,
            self.path.display()
        )
    }
}

impl std::error::Error for CacheDegraded {}

/// Latches degradation, emitting the typed warning exactly once.
fn degrade(path: &Path, cause: &str) {
    // xtask-atomics: one-shot latch; swap makes exactly one caller the announcer, ordering of the warning text is not data-bearing
    if !DEGRADED.swap(true, Ordering::Relaxed) {
        let warning = CacheDegraded {
            path: path.to_owned(),
            cause: cause.to_owned(),
        };
        eprintln!("warning: {warning}");
        OBS_DEGRADED.inc();
    }
}

/// Whether the disk layer has been downgraded to memo-only.
pub fn is_degraded() -> bool {
    DEGRADED.load(Ordering::Relaxed) // xtask-atomics: advisory latch read; a racing store/load at the flip only costs one extra disk attempt
}

/// Registers the degradation obs counter (zero-valued) so it appears in
/// a [`simkit::obs::MetricsSnapshot`] even on healthy runs.
pub(crate) fn register_obs() {
    OBS_DEGRADED.add(0);
}

/// Sets the cache directory (`Some` enables, `None` disables). The
/// directory is created lazily on first store. Clears the degradation
/// latch: a newly configured directory is trusted until it fails.
pub fn configure(dir: Option<PathBuf>) {
    *lock(&DIR) = dir;
    DEGRADED.store(false, Ordering::Relaxed); // xtask-atomics: latch reset under reconfiguration; callers serialise configuration
}

/// The conventional default cache location, `target/rlpm-cache/`
/// (relative to the working directory, next to the build artifacts it
/// accelerates).
pub fn default_dir() -> PathBuf {
    PathBuf::from("target").join("rlpm-cache")
}

/// The currently configured cache directory, if the cache is enabled.
pub fn active_dir() -> Option<PathBuf> {
    lock(&DIR).clone()
}

/// Whether the cache is currently enabled.
pub fn is_enabled() -> bool {
    lock(&DIR).is_some()
}

/// Point-in-time counters of cache activity since the last
/// [`reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the memo or the disk store.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Corrupt or version-mismatched disk entries removed.
    pub evictions: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Disk writes that failed (the result is still returned; the cache
    /// never turns an I/O problem into an experiment error).
    pub store_failures: u64,
}

/// Reads the current cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed), // xtask-atomics: independent stat counter; snapshot tolerates tearing across fields
        misses: MISSES.load(Ordering::Relaxed), // xtask-atomics: independent stat counter; snapshot tolerates tearing across fields
        evictions: EVICTIONS.load(Ordering::Relaxed), // xtask-atomics: independent stat counter; snapshot tolerates tearing across fields
        stores: STORES.load(Ordering::Relaxed), // xtask-atomics: independent stat counter; snapshot tolerates tearing across fields
        store_failures: STORE_FAILURES.load(Ordering::Relaxed), // xtask-atomics: independent stat counter; snapshot tolerates tearing across fields
    }
}

/// Zeroes the cache counters (benches measure passes independently).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed); // xtask-atomics: test-support reset; callers serialise via the env-lock
    MISSES.store(0, Ordering::Relaxed); // xtask-atomics: test-support reset; callers serialise via the env-lock
    EVICTIONS.store(0, Ordering::Relaxed); // xtask-atomics: test-support reset; callers serialise via the env-lock
    STORES.store(0, Ordering::Relaxed); // xtask-atomics: test-support reset; callers serialise via the env-lock
    STORE_FAILURES.store(0, Ordering::Relaxed); // xtask-atomics: test-support reset; callers serialise via the env-lock
}

/// Drops every in-memory memo entry, forcing the next lookups back to
/// the disk store. For benches and tests that measure cold-vs-warm
/// behavior; call only between passes (a concurrent in-flight compute
/// is re-run by its waiters, which is correct but does duplicate work).
pub fn clear_memo() {
    lock(&MEMO).clear();
    MEMO_CV.notify_all();
}

// ---------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------

/// Builds a cache key from a canonical encoding of the inputs.
///
/// Every component is appended length-prefixed (so `("ab", "c")` and
/// `("a", "bc")` hash differently), starting with the format-version
/// salt and the entry kind. Config structs contribute their `Debug`
/// representation: Rust's float `Debug` is exact (round-trips every
/// bit), and any newly added field changes the representation — the
/// self-invalidation property the cache relies on.
pub(crate) struct Key {
    bytes: Vec<u8>,
}

impl Key {
    /// Starts a key for one entry `kind` (a short tag like `"qtbl"`).
    pub(crate) fn new(kind: &str) -> Key {
        let mut key = Key {
            bytes: Vec::with_capacity(256),
        };
        key.push(&CACHE_FORMAT_VERSION.to_le_bytes());
        key.push(kind.as_bytes());
        key
    }

    fn push(&mut self, part: &[u8]) {
        self.bytes
            .extend_from_slice(&(part.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(part);
    }

    /// Appends an integer component (seeds, durations in nanos).
    pub(crate) fn u64(mut self, v: u64) -> Key {
        self.push(&v.to_le_bytes());
        self
    }

    /// Appends a string component (scenario and policy names).
    pub(crate) fn str(mut self, s: &str) -> Key {
        self.push(s.as_bytes());
        self
    }

    /// Appends a config struct via its `Debug` representation.
    pub(crate) fn debug<T: std::fmt::Debug>(mut self, v: &T) -> Key {
        self.push(format!("{v:?}").as_bytes());
        self
    }

    /// The FNV-1a-64 of the canonical encoding.
    pub(crate) fn finish(&self) -> u64 {
        fnv1a64(&self.bytes)
    }
}

// ---------------------------------------------------------------------
// Memoisation and in-flight coalescing
// ---------------------------------------------------------------------

enum MemoSlot {
    /// Another thread is computing this entry right now.
    InFlight,
    /// The finished bytes.
    Ready(Arc<Vec<u8>>),
}

static MEMO: Mutex<BTreeMap<(&'static str, u64), MemoSlot>> = Mutex::new(BTreeMap::new());
static MEMO_CV: Condvar = Condvar::new();

/// Removes a dangling `InFlight` marker if the computing closure
/// panicked, so waiters wake up and recompute instead of hanging.
struct InFlightGuard {
    kind: &'static str,
    key: u64,
    armed: bool,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        if self.armed {
            lock(&MEMO).remove(&(self.kind, self.key));
            MEMO_CV.notify_all();
        }
    }
}

fn record_hit() {
    HITS.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
    OBS_HITS.inc();
}

fn record_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
    OBS_MISSES.inc();
}

/// Returns the cached bytes for `(kind, key)`, computing and caching
/// them on a miss.
///
/// Lookup order: in-memory memo (coalescing concurrent requests for the
/// same entry), then the disk store, then `compute`. A `None` from
/// `compute` (a cell that cannot run, e.g. an invalid SoC config) is
/// not cached and is returned as `None` — exactly the uncached
/// behavior.
///
/// Callers gate on [`is_enabled`] and take their original code path
/// when the cache is off; if the cache is disabled concurrently, this
/// degrades to a plain pass-through `compute` call.
pub fn get_or_compute<F>(kind: &'static str, key: u64, compute: F) -> Option<Arc<Vec<u8>>>
where
    F: FnOnce() -> Option<Vec<u8>>,
{
    let Some(dir) = active_dir() else {
        return compute().map(Arc::new);
    };

    {
        let mut memo = lock(&MEMO);
        loop {
            match memo.get(&(kind, key)) {
                Some(MemoSlot::Ready(bytes)) => {
                    record_hit();
                    return Some(Arc::clone(bytes));
                }
                Some(MemoSlot::InFlight) => {
                    memo = match MEMO_CV.wait(memo) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                None => {
                    memo.insert((kind, key), MemoSlot::InFlight);
                    break;
                }
            }
        }
    }

    let mut guard = InFlightGuard {
        kind,
        key,
        armed: true,
    };
    let payload = match load_from_disk(&dir, kind, key) {
        Some(payload) => {
            record_hit();
            Some(payload)
        }
        None => {
            record_miss();
            let computed = compute();
            if let Some(payload) = &computed {
                store_to_disk(&dir, kind, key, payload);
            }
            computed
        }
    };

    let result = payload.map(Arc::new);
    {
        let mut memo = lock(&MEMO);
        match &result {
            Some(bytes) => {
                memo.insert((kind, key), MemoSlot::Ready(Arc::clone(bytes)));
            }
            None => {
                memo.remove(&(kind, key));
            }
        }
    }
    guard.armed = false;
    MEMO_CV.notify_all();
    if result.is_some() {
        crate::journal::record(kind, key);
    }
    result
}

/// Probes the memo and the disk store for `(kind, key)` without
/// computing anything. Batched evaluation uses this to split a sweep
/// into warm cells (answered here) and cold cells (run together in one
/// [`crate::run_batch`] dispatch, then [`put`]).
///
/// A present entry records a hit, an absent one a miss — so a warm
/// batched sweep shows the same all-hits/no-misses signature as a warm
/// looped one. An entry another thread is computing right now is
/// treated as absent rather than waited for: the batch recomputes it,
/// which duplicates deterministic work but never blocks a whole fleet
/// on one cell. Returns `None` (without counting) when the cache is
/// disabled.
pub fn lookup(kind: &'static str, key: u64) -> Option<Arc<Vec<u8>>> {
    let dir = active_dir()?;
    {
        let memo = lock(&MEMO);
        if let Some(MemoSlot::Ready(bytes)) = memo.get(&(kind, key)) {
            record_hit();
            return Some(Arc::clone(bytes));
        }
    }
    match load_from_disk(&dir, kind, key) {
        Some(payload) => {
            record_hit();
            let bytes = Arc::new(payload);
            lock(&MEMO).insert((kind, key), MemoSlot::Ready(Arc::clone(&bytes)));
            MEMO_CV.notify_all();
            crate::journal::record(kind, key);
            Some(bytes)
        }
        None => {
            record_miss();
            None
        }
    }
}

/// Inserts already-computed bytes under `(kind, key)` into the memo and
/// the disk store — the second half of the [`lookup`]/`put` pair used
/// by batched evaluation (the miss was already counted by `lookup`).
/// A no-op when the cache is disabled.
pub fn put(kind: &'static str, key: u64, payload: Vec<u8>) {
    let Some(dir) = active_dir() else {
        return;
    };
    store_to_disk(&dir, kind, key, &payload);
    lock(&MEMO).insert((kind, key), MemoSlot::Ready(Arc::new(payload)));
    MEMO_CV.notify_all();
    crate::journal::record(kind, key);
}

// ---------------------------------------------------------------------
// Disk store
// ---------------------------------------------------------------------

fn entry_path(dir: &Path, kind: &str, key: u64) -> PathBuf {
    dir.join(format!("{kind}-{key:016x}.bin"))
}

/// Reads a fixed-size little-endian field at `offset`, or `None` if the
/// buffer ends first (keeps envelope parsing free of panicking slices).
fn read_array<const N: usize>(bytes: &[u8], offset: usize) -> Option<[u8; N]> {
    bytes
        .get(offset..offset.checked_add(N)?)
        .and_then(|s| s.try_into().ok())
}

/// Validates the envelope and returns the payload, or `None` for any
/// defect: bad magic, unknown version, truncation, checksum mismatch.
fn parse_envelope(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.get(..ENVELOPE_MAGIC.len()) != Some(ENVELOPE_MAGIC.as_slice()) {
        return None;
    }
    let version = u16::from_le_bytes(read_array(bytes, 8)?);
    if version != ENVELOPE_VERSION {
        return None;
    }
    let checksum = u64::from_le_bytes(read_array(bytes, 10)?);
    let payload = bytes.get(ENVELOPE_HEADER_LEN..)?;
    if fnv1a64(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

/// Maps a fired `cache/*` failpoint onto the cache's typed failure
/// path: `Delay` sleeps, `Abort` kills the process (crash-safety
/// tests), and `Error`/`Panic` report an injected I/O failure — the
/// cache never panics, so both collapse onto the error path.
fn injected_io_failure(site: &str, key: u64) -> bool {
    use simkit::failpoint::{check, FailpointAction, ABORT_EXIT_CODE};
    match check(site, key) {
        None => false,
        Some(FailpointAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some(FailpointAction::Abort) => std::process::exit(ABORT_EXIT_CODE),
        Some(FailpointAction::Error) | Some(FailpointAction::Panic) => true,
    }
}

/// Loads an entry's payload, evicting (deleting) defective files. An
/// absent file is an ordinary miss; a defective one counts an eviction.
/// Either way the answer is `None` and the caller recomputes. A *hard*
/// read error (permissions, unreadable directory — anything but
/// not-found) degrades the disk layer, as does an injected `cache/load`
/// failpoint.
fn load_from_disk(dir: &Path, kind: &str, key: u64) -> Option<Vec<u8>> {
    if is_degraded() {
        return None;
    }
    let path = entry_path(dir, kind, key);
    if injected_io_failure(simkit::failpoint::SITE_CACHE_LOAD, key) {
        degrade(&path, "injected cache/load failpoint");
        return None;
    }
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            degrade(&path, &e.to_string());
            return None;
        }
    };
    match parse_envelope(&bytes) {
        Some(payload) => Some(payload),
        None => {
            let _ = std::fs::remove_file(&path);
            EVICTIONS.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
            OBS_EVICTIONS.inc();
            None
        }
    }
}

/// Writes an entry via a temp file + rename so readers never observe a
/// half-written entry. Failures are counted and degrade the disk layer
/// (with a one-shot typed warning), never raised.
fn store_to_disk(dir: &Path, kind: &str, key: u64, payload: &[u8]) {
    if is_degraded() {
        STORE_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
        return;
    }
    let path = entry_path(dir, kind, key);
    if injected_io_failure(simkit::failpoint::SITE_CACHE_STORE, key) {
        STORE_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
        degrade(&path, "injected cache/store failpoint");
        return;
    }
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + payload.len());
    out.extend_from_slice(ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);

    let tmp = dir.join(format!("{kind}-{key:016x}.tmp{}", std::process::id()));
    let written = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&tmp, &out))
        .and_then(|()| std::fs::rename(&tmp, &path));
    match written {
        Ok(()) => {
            STORES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            STORE_FAILURES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: monotone event count; no other memory depends on it
            degrade(&path, &e.to_string());
        }
    }
}

// ---------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------

/// Little-endian byte encoder for cache payloads (the workspace builds
/// offline, without serde; fields are written in struct order and bits
/// are preserved exactly, floats via `to_bits`).
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A length-prefixed float slice.
    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    /// A length-prefixed string.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Decoder matching [`Enc`]; every read is checked so a short or
/// oversized payload decodes to `None` (and the caller recomputes).
pub(crate) struct Dec<'a> {
    // xtask-allow: no-panic-lib -- `'a [u8]` is a slice type, not an index expression
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    // xtask-allow: no-panic-lib -- `'a [u8]` is a slice type, not an index expression
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let word = read_array::<8>(self.buf, self.pos)?;
        self.pos += 8;
        Some(u64::from_le_bytes(word))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    pub(crate) fn f64s(&mut self) -> Option<Vec<f64>> {
        let len = self.u64()?;
        // Reject absurd lengths before allocating (a corrupt length
        // must not become an allocation failure).
        if len > (self.buf.len() as u64) / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Some(out)
    }

    /// A length-prefixed string (must be valid UTF-8).
    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u64()?;
        if len > self.buf.len() as u64 {
            return None;
        }
        let end = self.pos.checked_add(len as usize)?;
        let raw = self.buf.get(self.pos..end)?;
        self.pos = end;
        String::from_utf8(raw.to_vec()).ok()
    }

    /// Whether the payload was consumed exactly.
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialises evaluated cell metrics. Traced runs are not cacheable
/// (`None`): a trace is bulky and only requested for figure generation.
pub(crate) fn encode_metrics(m: &RunMetrics) -> Option<Vec<u8>> {
    if m.trace.is_some() {
        return None;
    }
    let mut e = Enc::new();
    e.f64(m.energy_j);
    e.f64(m.qos.units);
    e.f64(m.qos.strict_units);
    e.f64(m.qos.max_units);
    e.u64(m.qos.completed);
    e.u64(m.qos.on_time);
    e.u64(m.qos.late);
    e.u64(m.qos.violations);
    e.f64(m.energy_per_qos);
    e.f64(m.avg_power_w);
    e.u64(m.transitions);
    e.u64(m.epochs);
    e.u64(m.jobs_submitted);
    e.f64s(&m.mean_level_frac);
    e.f64(m.idle_gated_core_s);
    e.f64(m.idle_collapsed_core_s);
    e.u64(m.watchdog_engagements);
    e.u64(m.fault_counts.telemetry_noise);
    e.u64(m.fault_counts.telemetry_dropout);
    e.u64(m.fault_counts.telemetry_stale);
    e.u64(m.fault_counts.thermal_throttle);
    e.u64(m.fault_counts.core_offline);
    e.u64(m.fault_counts.decision_overrun);
    e.u64(m.fault_counts.table_seu);
    e.u64(m.seus_detected);
    e.u64(m.table_reloads);
    Some(e.finish())
}

/// Deserialises [`encode_metrics`] output (trace-free by construction).
pub(crate) fn decode_metrics(bytes: &[u8]) -> Option<RunMetrics> {
    let mut d = Dec::new(bytes);
    let energy_j = d.f64()?;
    let qos = workload::QosReport {
        units: d.f64()?,
        strict_units: d.f64()?,
        max_units: d.f64()?,
        completed: d.u64()?,
        on_time: d.u64()?,
        late: d.u64()?,
        violations: d.u64()?,
    };
    let energy_per_qos = d.f64()?;
    let avg_power_w = d.f64()?;
    let transitions = d.u64()?;
    let epochs = d.u64()?;
    let jobs_submitted = d.u64()?;
    let mean_level_frac = d.f64s()?;
    let idle_gated_core_s = d.f64()?;
    let idle_collapsed_core_s = d.f64()?;
    let watchdog_engagements = d.u64()?;
    let fault_counts = simkit::FaultCounts {
        telemetry_noise: d.u64()?,
        telemetry_dropout: d.u64()?,
        telemetry_stale: d.u64()?,
        thermal_throttle: d.u64()?,
        core_offline: d.u64()?,
        decision_overrun: d.u64()?,
        table_seu: d.u64()?,
    };
    let seus_detected = d.u64()?;
    let table_reloads = d.u64()?;
    if !d.finished() {
        return None;
    }
    Some(RunMetrics {
        energy_j,
        qos,
        energy_per_qos,
        avg_power_w,
        transitions,
        epochs,
        jobs_submitted,
        mean_level_frac,
        idle_gated_core_s,
        idle_collapsed_core_s,
        watchdog_engagements,
        fault_counts,
        seus_detected,
        table_reloads,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-global cache directory.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rlpm-cache-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_metrics() -> RunMetrics {
        RunMetrics {
            energy_j: 12.5,
            qos: workload::QosReport {
                units: 100.25,
                strict_units: 90.5,
                max_units: 110.0,
                completed: 42,
                on_time: 40,
                late: 2,
                violations: 1,
            },
            energy_per_qos: 0.125,
            avg_power_w: 1.75,
            transitions: 321,
            epochs: 1200,
            jobs_submitted: 44,
            mean_level_frac: vec![0.25, 0.75],
            idle_gated_core_s: 1.5,
            idle_collapsed_core_s: 0.5,
            watchdog_engagements: 3,
            fault_counts: simkit::FaultCounts {
                telemetry_noise: 1,
                telemetry_dropout: 2,
                telemetry_stale: 3,
                thermal_throttle: 4,
                core_offline: 5,
                decision_overrun: 6,
                table_seu: 7,
            },
            seus_detected: 7,
            table_reloads: 2,
            trace: None,
        }
    }

    #[test]
    fn key_components_are_order_and_boundary_sensitive() {
        let a = Key::new("k").str("ab").str("c").finish();
        let b = Key::new("k").str("a").str("bc").finish();
        let c = Key::new("k").str("c").str("ab").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Key::new("k").str("ab").str("c").finish());
        assert_ne!(Key::new("x").u64(1).finish(), Key::new("y").u64(1).finish());
    }

    #[test]
    fn envelope_round_trips_and_rejects_defects() {
        let lock = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_dir("envelope");
        store_to_disk(&dir, "t", 7, b"payload");
        assert_eq!(
            load_from_disk(&dir, "t", 7).as_deref(),
            Some(&b"payload"[..])
        );

        let path = entry_path(&dir, "t", 7);
        let good = std::fs::read(&path).unwrap();

        // Truncated.
        std::fs::write(&path, &good[..good.len() - 2]).unwrap();
        assert!(load_from_disk(&dir, "t", 7).is_none());
        assert!(!path.exists(), "defective entry is evicted");

        // Bit-flipped payload.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(load_from_disk(&dir, "t", 7).is_none());

        // Wrong envelope version.
        let mut wrong = good.clone();
        wrong[8] = 0xEE;
        std::fs::write(&path, &wrong).unwrap();
        assert!(load_from_disk(&dir, "t", 7).is_none());

        // Absent file: a miss, not an eviction-triggering defect.
        assert!(load_from_disk(&dir, "t", 8).is_none());

        let _ = std::fs::remove_dir_all(&dir);
        drop(lock);
    }

    #[test]
    fn get_or_compute_memoises_and_persists() {
        let lock = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_dir("memo");
        configure(Some(dir.clone()));
        clear_memo();
        reset_stats();

        let mut calls = 0;
        let first = get_or_compute("unit", 1, || {
            calls += 1;
            Some(vec![1, 2, 3])
        })
        .unwrap();
        assert_eq!(first.as_slice(), &[1, 2, 3]);
        assert_eq!(calls, 1);

        // Memo hit: the closure must not run again.
        let second = get_or_compute("unit", 1, || {
            calls += 1;
            None
        })
        .unwrap();
        assert_eq!(second.as_slice(), &[1, 2, 3]);
        assert_eq!(calls, 1);

        // Disk hit after the memo is dropped.
        clear_memo();
        let third = get_or_compute("unit", 1, || {
            calls += 1;
            None
        })
        .unwrap();
        assert_eq!(third.as_slice(), &[1, 2, 3]);
        assert_eq!(calls, 1);

        let s = stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.stores, 1);

        // A `None` compute is passed through and not cached.
        assert!(get_or_compute("unit", 2, || None).is_none());
        assert!(get_or_compute("unit", 2, || Some(vec![9])).is_some());

        configure(None);
        let _ = std::fs::remove_dir_all(&dir);
        drop(lock);
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let lock = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        configure(None);
        let mut calls = 0;
        for _ in 0..2 {
            let out = get_or_compute("off", 1, || {
                calls += 1;
                Some(vec![5])
            });
            assert_eq!(out.unwrap().as_slice(), &[5]);
        }
        assert_eq!(calls, 2, "no memoisation while disabled");
        drop(lock);
    }

    #[test]
    fn metrics_encoding_round_trips_exactly() {
        let m = sample_metrics();
        let bytes = encode_metrics(&m).unwrap();
        let back = decode_metrics(&bytes).unwrap();
        assert_eq!(back.energy_j.to_bits(), m.energy_j.to_bits());
        assert_eq!(back.qos, m.qos);
        assert_eq!(back.mean_level_frac, m.mean_level_frac);
        assert_eq!(back.fault_counts, m.fault_counts);
        assert_eq!(back.epochs, m.epochs);
        assert!(back.trace.is_none());

        // Truncated or padded payloads decode to `None`.
        assert!(decode_metrics(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_metrics(&padded).is_none());
    }

    #[test]
    fn traced_metrics_are_not_cacheable() {
        let mut m = sample_metrics();
        m.trace = Some(simkit::trace::Trace::new("t", ["c"]));
        assert!(encode_metrics(&m).is_none());
    }
}

//! Fixture: every kind of no-panic-lib violation the lint must catch.
//! This file is test data for the lint engine; it is never compiled.

pub fn config(path: &str) -> Config {
    // Seeded violation: unwrap in library code.
    let text = std::fs::read_to_string(path).unwrap();
    // Seeded violation: expect in library code.
    parse(&text).expect("config must parse")
}

pub fn pick(levels: &[u64], i: usize) -> u64 {
    // Seeded violation: indexing expression can panic.
    levels[i]
}

pub fn guard(state: State) {
    if state.is_poisoned() {
        // Seeded violation: explicit panic in library code.
        panic!("poisoned state");
    }
}

//! Taint-engine fixture: seed sites in a downstream crate (`beta`). This
//! file is deliberately dirty — floats and wall clocks — so the engine's
//! cross-crate propagation has something to find. Not compiled.

/// Float seed: literal and f64 arithmetic.
pub fn scale_lut(x: i64) -> i64 {
    ((x as f64) * 1.5) as i64
}

/// Nondeterminism seed: reads the host wall clock.
pub fn jitter(n: u64) -> u64 {
    let t = std::time::Instant::now();
    n ^ (t.elapsed().as_nanos() as u64)
}

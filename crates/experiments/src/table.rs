//! Result tables: markdown rendering and CSV export.

use std::fmt::Write as _;
use std::path::Path;

use simkit::trace::WriteError;

/// A simple column-aligned result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<I, S>(title: &str, header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            title: title.to_owned(),
            header,
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} does not match {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Renders as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`WriteError`] naming the destination on any filesystem
    /// failure, so result tables never truncate silently.
    pub fn write_csv(&self, path: &Path) -> Result<(), WriteError> {
        std::fs::write(path, self.to_csv()).map_err(|e| WriteError::new(path, e))
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let ax = x.abs();
    if ax == 0.0 {
        "0".into()
    } else if ax >= 100.0 {
        format!("{x:.1}")
    } else if ax >= 1.0 {
        format!("{x:.3}")
    } else if ax >= 1e-3 {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", ["policy", "energy"]);
        t.push(["ondemand", "1.5"]);
        t.push(["rlpm", "1.0"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = table().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### Demo");
        assert!(lines[2].starts_with("| policy"));
        assert!(lines[3].starts_with("|---"));
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", ["a"]);
        t.push(["hello, \"world\""]);
        assert_eq!(t.to_csv(), "a\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        table().push(["only-one"]);
    }

    #[test]
    fn write_csv_failure_is_typed_and_names_the_path() {
        let missing = Path::new("/nonexistent-dir-for-test/table.csv");
        let err = table().write_csv(missing).expect_err("dir does not exist");
        assert_eq!(err.path(), missing);
        assert!(err.to_string().contains("table.csv"));
    }

    #[test]
    fn float_formatting_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.56), "1234.6");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.012345), "0.01235");
        assert_eq!(fmt_f64(1.5e-6), "1.500e-6");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.3166), "31.66%");
    }
}

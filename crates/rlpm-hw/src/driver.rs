//! The CPU-side driver: a [`Governor`] that makes its decisions by
//! talking to the policy engine over the register interface — the
//! closed-loop form of the paper's hardware-implemented policy.

use governors::{Governor, SystemState};
use simkit::stats::Running;
use simkit::{obs, SimDuration};
use soc::LevelRequest;

use rlpm::reward::{EpochOutcome, RewardFn};
use rlpm::{Action, ActionSpace, Predictor, RlConfig, StateIndex, StateSpace};

use crate::mmio::{regs, CTRL_CLEAR_SEU, CTRL_START_DECIDE, CTRL_START_UPDATE, STATUS_SEU};
use crate::{AxiLiteBus, HwConfig, PolicyEngine, PolicyMmio};

/// Decisions the hardware policy engine produced across all drivers.
static HW_DECISIONS: obs::Counter = obs::Counter::new("hw.decisions");
/// Q-table SEUs the recovery machinery detected.
static HW_SEUS: obs::Counter = obs::Counter::new("hw.seus_detected");
/// Golden-copy table reloads performed over the bus.
static HW_RELOADS: obs::Counter = obs::Counter::new("hw.table_reloads");

/// Why a bulk Q-table load was rejected or rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableLoadError {
    /// The software table's geometry does not match the engine's BRAMs.
    SizeMismatch {
        /// Entries the engine's table holds.
        expected: usize,
        /// Entries the software table supplied.
        got: usize,
    },
    /// The post-load parity scrub found a corrupted entry — the load
    /// itself was hit by an upset and must not be trusted.
    ParityMismatch {
        /// Linear address of the first failing entry.
        addr: usize,
    },
}

impl std::fmt::Display for TableLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableLoadError::SizeMismatch { expected, got } => write!(
                f,
                "table load size mismatch: engine holds {expected} entries, software supplied {got}"
            ),
            TableLoadError::ParityMismatch { addr } => {
                write!(f, "post-load parity scrub failed at entry {addr}")
            }
        }
    }
}

impl std::error::Error for TableLoadError {}

/// How the CPU learns that the engine finished.
///
/// Polling reads `STATUS` until `DONE`; each poll is a full bus read, and
/// the first one cannot observe completion earlier than the engine's own
/// compute time. An interrupt line skips the status traffic entirely at
/// the cost of the SoC's IRQ delivery latency — cheaper for this engine
/// only when the interrupt path is faster than one status read, which is
/// exactly the trade-off E4's distribution table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverMode {
    /// Busy-poll `STATUS` over the bus.
    #[default]
    Polling,
    /// Wait for the completion interrupt (fixed delivery latency), then
    /// read the result.
    Interrupt {
        /// IRQ delivery + handler entry latency.
        irq_latency: SimDuration,
    },
}

/// A governor whose brain is the hardware engine.
#[derive(Debug, Clone)]
pub struct HwPolicyDriver {
    bus: AxiLiteBus<PolicyMmio>,
    mode: DriverMode,
    states: StateSpace,
    actions: ActionSpace,
    predictor: Predictor,
    reward_fn: RewardFn,
    prev: Option<(StateIndex, Action)>,
    training: bool,
    /// Per-epoch end-to-end decision latency (bus + fabric).
    latency: Running,
    engine_clock_hz: u64,
    /// Golden copy of the last successfully loaded table (raw Q16.16
    /// bits), replayed over the bus on SEU recovery. Empty until
    /// [`HwPolicyDriver::load_table`] succeeds.
    golden: Vec<u32>,
    seus_detected: u64,
    table_reloads: u64,
}

impl HwPolicyDriver {
    /// Builds the driver, engine and bus for a policy configuration.
    pub fn new(hw: HwConfig, rl: &RlConfig) -> Self {
        let engine = PolicyEngine::new(hw, rl);
        let engine_clock_hz = engine.config().clock_hz;
        HwPolicyDriver {
            bus: AxiLiteBus::new(PolicyMmio::new(engine)),
            mode: DriverMode::Polling,
            states: StateSpace::new(rl),
            actions: ActionSpace::new(rl),
            predictor: Predictor::new(rl),
            reward_fn: RewardFn::from_config(rl),
            prev: None,
            training: true,
            latency: Running::new(),
            engine_clock_hz,
            golden: Vec::new(),
            seus_detected: 0,
            table_reloads: 0,
        }
    }

    /// Enables/disables on-line training (update transactions).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Selects how completion is detected (polling vs interrupt).
    pub fn set_mode(&mut self, mode: DriverMode) {
        self.mode = mode;
    }

    /// The completion-detection mode in use.
    pub fn mode(&self) -> DriverMode {
        self.mode
    }

    /// Time from issuing `CTRL` to knowing the engine is done, charged
    /// according to the driver mode, together with the `STATUS` bits
    /// observed at completion. The engine's compute time overlaps with
    /// the wait in either mode.
    ///
    /// Polling gets the status from the read it already performs (no
    /// extra traffic); interrupt mode models the SEU flag as the error
    /// IRQ line the handler samples — a wire level, not a bus
    /// transaction.
    fn completion_wait(&mut self, compute: SimDuration) -> (u32, SimDuration) {
        match self.mode {
            DriverMode::Polling => {
                // The status read cannot complete before the engine does.
                let (status, t) = self.bus.read(regs::STATUS);
                (status, compute.max(t))
            }
            DriverMode::Interrupt { irq_latency } => {
                let seu = u32::from(self.bus.device().engine().seu_detected());
                (crate::STATUS_DONE | (seu << 2), compute + irq_latency)
            }
        }
    }

    /// Loads a software-trained Q-table into the engine over the `QADDR`/
    /// `QDATA` port, exactly as the real driver would after offline
    /// training, then scrubs the device table against its parity bits.
    /// On success the driver keeps a golden copy for SEU recovery and
    /// returns the bus time the bulk load took.
    ///
    /// # Errors
    ///
    /// [`TableLoadError::SizeMismatch`] when the table's geometry differs
    /// from the engine's; [`TableLoadError::ParityMismatch`] when the
    /// post-load scrub finds a corrupted entry (the golden copy is left
    /// untouched so a retry or recovery path stays possible).
    pub fn load_table(&mut self, table: &rlpm::QTable) -> Result<SimDuration, TableLoadError> {
        let expected = self.bus.device().engine().agent().table().num_entries();
        let got = table.num_states() * table.num_actions();
        if expected != got {
            return Err(TableLoadError::SizeMismatch { expected, got });
        }
        let mut spent = SimDuration::ZERO;
        spent += self.bus.write(regs::QADDR, 0);
        let mut golden = Vec::with_capacity(got);
        for v in table.quantized() {
            let bits = v.to_bits() as u32;
            spent += self.bus.write(regs::QDATA, bits);
            golden.push(bits);
        }
        if let Some(addr) = self
            .bus
            .device()
            .engine()
            .agent()
            .table()
            .first_parity_error()
        {
            return Err(TableLoadError::ParityMismatch { addr });
        }
        self.golden = golden;
        Ok(spent)
    }

    /// Recovers from a detected SEU: replays the golden table over the
    /// bus (when one exists — an engine trained purely on-line has no
    /// clean copy to restore), acknowledges the error, and returns the
    /// bus time the whole recovery took.
    fn recover_from_seu(&mut self) -> SimDuration {
        self.seus_detected += 1;
        HW_SEUS.inc();
        let mut spent = SimDuration::ZERO;
        if !self.golden.is_empty() {
            self.table_reloads += 1;
            HW_RELOADS.inc();
            spent += self.bus.write(regs::QADDR, 0);
            for &bits in &self.golden {
                spent += self.bus.write(regs::QDATA, bits);
            }
        }
        spent += self.bus.write(regs::CTRL, CTRL_CLEAR_SEU);
        spent
    }

    /// The engine behind the bus.
    pub fn engine(&self) -> &PolicyEngine {
        self.bus.device().engine()
    }

    /// Statistics over per-epoch end-to-end decision latency.
    pub fn latency_stats(&self) -> &Running {
        &self.latency
    }

    /// Bus transaction counters, with the driver's reload count merged in.
    pub fn bus_stats(&self) -> crate::BusStats {
        crate::BusStats {
            table_reloads: self.table_reloads,
            ..self.bus.stats()
        }
    }

    fn engine_op_latency(&self) -> SimDuration {
        // The CTRL write returns after the model ran the FSM; charge its
        // cycle count at the fabric clock explicitly.
        let cycles = self.bus.device().engine().cycles_of_last_op();
        SimDuration::from_cycles(cycles, self.engine_clock_hz)
    }
}

impl Governor for HwPolicyDriver {
    fn name(&self) -> &str {
        "rlpm-hw"
    }

    fn decide(&mut self, state: &SystemState) -> LevelRequest {
        let mut request = LevelRequest::new(Vec::new());
        self.decide_into(state, &mut request);
        request
    }

    fn decide_into(&mut self, state: &SystemState, request: &mut LevelRequest) {
        self.predictor.observe(state);
        let s = self.states.encode(state, &self.predictor);
        let mut spent = SimDuration::ZERO;

        if self.training {
            if let Some((ps, pa)) = self.prev {
                // reward_fx quantises on the software side of the register
                // interface; this driver never touches f64 (fx-purity lint).
                let r = self.reward_fn.reward_fx(&EpochOutcome {
                    qos_units: state.qos.units,
                    energy_j: state.soc.energy_j,
                    violations: state.qos.violations,
                    pending_jobs: state.qos.pending_jobs,
                });
                spent += self.bus.write(regs::STATE, ps as u32);
                spent += self.bus.write(regs::PREV_ACTION, pa as u32);
                spent += self.bus.write(regs::NEXT_STATE, s as u32);
                spent += self.bus.write(regs::REWARD, r.to_bits() as u32);
                spent += self.bus.write(regs::CTRL, CTRL_START_UPDATE);
                let compute = self.engine_op_latency();
                // An SEU surfacing during the update is caught below by
                // the decision's status check — the flag is sticky.
                spent += self.completion_wait(compute).1;
            }
        }

        spent += self.bus.write(regs::STATE, s as u32);
        spent += self.bus.write(regs::CTRL, CTRL_START_DECIDE);
        let compute = self.engine_op_latency();
        let (status, wait) = self.completion_wait(compute);
        spent += wait;
        if status & STATUS_SEU != 0 {
            // The action register holds a result computed from corrupted
            // BRAM contents: restore the table, acknowledge, and decide
            // again — all charged to this epoch's decision latency.
            spent += self.recover_from_seu();
            spent += self.bus.write(regs::CTRL, CTRL_START_DECIDE);
            let compute = self.engine_op_latency();
            spent += self.completion_wait(compute).1;
        }
        let (action, t) = self.bus.read(regs::ACTION);
        spent += t;

        self.latency.add_duration(spent);
        HW_DECISIONS.inc();
        let action = action as Action;
        self.prev = Some((s, action));
        self.actions
            .apply_into(state.soc.clusters.iter().map(|c| c.level), action, request);
    }

    fn reset(&mut self) {
        self.prev = None;
        self.predictor.reset();
    }

    fn inject_table_seu(&mut self, entropy: u64) -> bool {
        let table = self.bus.device_mut().engine_mut().agent_mut().table_mut();
        let entries = table.num_entries();
        if entries == 0 {
            return false;
        }
        // Low 32 bits pick the entry, high bits pick the bit lane.
        let addr = ((entropy & 0xFFFF_FFFF) % entries as u64) as usize;
        let bit = ((entropy >> 32) % 32) as u32;
        table.corrupt_bit(addr, bit)
    }

    fn seu_recovery_counts(&self) -> (u64, u64) {
        (self.seus_detected, self.table_reloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::state::synthetic_state;
    use soc::SocConfig;

    fn driver() -> HwPolicyDriver {
        let rl = RlConfig::for_soc(&SocConfig::symmetric_quad().unwrap());
        HwPolicyDriver::new(HwConfig::default(), &rl)
    }

    fn obs(util: f64, level: usize) -> SystemState {
        let mut s = synthetic_state(&[(
            util,
            level,
            11,
            300_000_000 + level as u64 * 150_000_000,
            (300_000_000, 1_800_000_000),
        )]);
        s.soc.energy_j = 0.03;
        s.qos.units = 0.8;
        s
    }

    #[test]
    fn decisions_are_valid_and_latency_is_tracked() {
        let mut d = driver();
        for i in 0..10 {
            let req = d.decide(&obs(0.5, i % 11));
            assert_eq!(req.levels.len(), 1);
            assert!(req.levels[0] < 11);
        }
        assert_eq!(d.latency_stats().count(), 10);
        // Every epoch costs on the order of a microsecond.
        let mean = d.latency_stats().mean();
        assert!(mean > 0.2e-6 && mean < 10e-6, "mean latency {mean}");
    }

    #[test]
    fn training_updates_the_engine_table() {
        let mut d = driver();
        let before: Vec<i32> = (0..20)
            .map(|i| d.engine().agent().table().get(i, 0).to_bits())
            .collect();
        for i in 0..200 {
            d.decide(&obs((i % 10) as f64 / 10.0, i % 11));
        }
        let after: Vec<i32> = (0..20)
            .map(|i| d.engine().agent().table().get(i, 0).to_bits())
            .collect();
        assert_ne!(before, after, "table must learn");
        let (decisions, updates) = d.engine().op_counts();
        assert_eq!(decisions, 200);
        assert_eq!(updates, 199, "first decision has no prior transition");
    }

    #[test]
    fn frozen_driver_performs_no_updates() {
        let mut d = driver();
        d.set_training(false);
        for i in 0..50 {
            d.decide(&obs(0.5, i % 11));
        }
        assert_eq!(d.engine().op_counts().1, 0);
        // Decision-only traffic: 2 writes + 2 reads per epoch.
        assert_eq!(d.bus_stats().writes, 100);
        assert_eq!(d.bus_stats().reads, 100);
    }

    #[test]
    fn interrupt_mode_trades_status_reads_for_irq_latency() {
        let mut polling = driver();
        polling.set_training(false);
        let mut irq_fast = driver();
        irq_fast.set_training(false);
        irq_fast.set_mode(DriverMode::Interrupt {
            irq_latency: SimDuration::from_nanos(40),
        });
        let mut irq_slow = driver();
        irq_slow.set_training(false);
        irq_slow.set_mode(DriverMode::Interrupt {
            irq_latency: SimDuration::from_micros(2),
        });
        for i in 0..50 {
            polling.decide(&obs(0.5, i % 11));
            irq_fast.decide(&obs(0.5, i % 11));
            irq_slow.decide(&obs(0.5, i % 11));
        }
        // A fast IRQ beats polling; a slow one loses to it.
        assert!(irq_fast.latency_stats().mean() < polling.latency_stats().mean());
        assert!(irq_slow.latency_stats().mean() > polling.latency_stats().mean());
        // Interrupt mode issues no STATUS reads: only the ACTION read.
        assert_eq!(irq_fast.bus_stats().reads, 50);
        assert_eq!(polling.bus_stats().reads, 100);
    }

    #[test]
    fn table_load_round_trips() {
        let rl = RlConfig::for_soc(&SocConfig::symmetric_quad().unwrap());
        let mut d = HwPolicyDriver::new(HwConfig::default(), &rl);
        let mut table = rlpm::QTable::new(rl.num_states(), rl.num_actions(), 0.0);
        table.set(3, 2, 1.5);
        table.set(7, 4, -2.25);
        let spent = d.load_table(&table).unwrap();
        assert!(spent > SimDuration::ZERO);
        assert_eq!(d.engine().agent().table().get(3, 2).to_f64(), 1.5);
        assert_eq!(d.engine().agent().table().get(7, 4).to_f64(), -2.25);
    }

    #[test]
    fn load_table_rejects_wrong_geometry() {
        let rl = RlConfig::for_soc(&SocConfig::symmetric_quad().unwrap());
        let mut d = HwPolicyDriver::new(HwConfig::default(), &rl);
        let wrong = rlpm::QTable::new(3, 2, 0.0);
        let err = d.load_table(&wrong).unwrap_err();
        assert!(matches!(
            err,
            TableLoadError::SizeMismatch { expected, got }
                if expected == rl.num_states() * rl.num_actions() && got == 6
        ));
        let msg = err.to_string();
        assert!(msg.contains("6"), "{msg}");
        // ParityMismatch renders its address too.
        let p = TableLoadError::ParityMismatch { addr: 42 }.to_string();
        assert!(p.contains("42"), "{p}");
    }

    #[test]
    fn seu_is_detected_recovered_and_counted() {
        let rl = RlConfig::for_soc(&SocConfig::symmetric_quad().unwrap());
        let mut d = HwPolicyDriver::new(HwConfig::default(), &rl);
        let mut table = rlpm::QTable::new(rl.num_states(), rl.num_actions(), 0.0);
        table.set(0, 1, 1.5);
        d.load_table(&table).unwrap();
        d.set_training(false);
        // Settle the predictor so the encoded state is stable, then learn
        // which row the next decision will fetch.
        for _ in 0..4 {
            d.decide(&obs(0.5, 3));
        }
        let (s, _) = d.prev.unwrap();
        // Flip a bit in that row without touching parity.
        let addr = s * rl.num_actions();
        let entropy = addr as u64 | (16u64 << 32);
        assert!(d.inject_table_seu(entropy));
        assert!(!d.engine().agent().table().row_parity_ok(s));

        d.decide(&obs(0.5, 3));
        assert_eq!(d.seu_recovery_counts(), (1, 1));
        assert_eq!(d.bus_stats().table_reloads, 1);
        assert!(!d.engine().seu_detected(), "flag acknowledged");
        assert!(
            d.engine().agent().table().all_parity_ok(),
            "golden reload restored the table"
        );
        assert_eq!(d.engine().agent().table().get(0, 1).to_f64(), 1.5);

        d.decide(&obs(0.5, 3));
        assert_eq!(d.seu_recovery_counts(), (1, 1), "no further recoveries");
    }

    #[test]
    fn latent_seu_without_golden_copy_is_acknowledged_without_reload() {
        let mut d = driver();
        d.set_training(false);
        for _ in 0..4 {
            d.decide(&obs(0.5, 3));
        }
        let (s, _) = d.prev.unwrap();
        let a_count = d.engine().agent().table().num_actions();
        assert!(d.inject_table_seu((s * a_count) as u64 | (3u64 << 32)));
        d.decide(&obs(0.5, 3));
        let (detected, reloads) = d.seu_recovery_counts();
        assert!(detected >= 1);
        assert_eq!(reloads, 0, "nothing clean to reload");
        assert_eq!(d.bus_stats().table_reloads, 0);
        // The corruption is latent: the row still fails parity, so the
        // next fetch re-detects it.
        d.decide(&obs(0.5, 3));
        assert!(d.seu_recovery_counts().0 > detected);
    }

    #[test]
    fn reset_clears_transition_but_keeps_table() {
        let mut d = driver();
        for i in 0..20 {
            d.decide(&obs(0.7, i % 11));
        }
        let table_before: Vec<i32> = (0..10)
            .map(|i| d.engine().agent().table().get(i, 0).to_bits())
            .collect();
        let updates = d.engine().op_counts().1;
        d.reset();
        d.decide(&obs(0.7, 0));
        assert_eq!(
            d.engine().op_counts().1,
            updates,
            "no update across episodes"
        );
        let table_after: Vec<i32> = (0..10)
            .map(|i| d.engine().agent().table().get(i, 0).to_bits())
            .collect();
        assert_eq!(table_before, table_after);
    }
}

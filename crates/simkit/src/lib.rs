//! # simkit — simulation substrate for the `rlpm` workspace
//!
//! This crate provides the domain-neutral building blocks every other crate
//! in the workspace is written on top of:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time
//!   with overflow-checked arithmetic;
//! * [`EventQueue`] — a deterministic discrete-event queue with stable
//!   FIFO ordering for simultaneous events;
//! * [`SimRng`] — a seedable, splittable random source plus the handful of
//!   distributions the workload generators need;
//! * [`faults`] — deterministic, seeded fault-injection schedules
//!   (telemetry noise/dropout/staleness, thermal throttle, core hotplug,
//!   decision overruns, Q-table SEUs) consumed by the experiment runner;
//! * [`failpoint`] — deterministic failpoints for the *harness itself*
//!   (seeded per-site error/panic/delay/abort injection consumed by the
//!   experiment scheduler and cache to exercise retry, quarantine and
//!   crash-resume paths);
//! * [`stats`] — online statistics (Welford mean/variance, fixed-bin
//!   histograms with percentile queries, exponentially weighted moving
//!   averages);
//! * [`trace`] — time-series recording with CSV export for the experiment
//!   harness;
//! * [`obs`] — feature-gated observability: lock-free metric handles,
//!   profiling spans, and process-wide snapshots (compiled to empty
//!   no-ops unless the `obs` feature is on).
//!
//! Everything is deterministic given a seed: there is no wall-clock access
//! anywhere in the workspace's simulation path.
//!
//! ```
//! use simkit::{SimTime, SimDuration, EventQueue};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "dvfs-epoch");
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "job-arrival");
//! let (t, ev) = queue.pop().expect("queue is non-empty");
//! assert_eq!(ev, "job-arrival");
//! assert_eq!(t.as_micros(), 1_000);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod rng;
mod time;

pub mod failpoint;
pub mod faults;
pub mod obs;
pub mod stats;
pub mod trace;

pub use event::{EventQueue, ScheduledEvent};
pub use failpoint::{FailpointAction, FailpointPlan};
pub use faults::{ClusterFaults, FaultCounts, FaultPlan, FaultRates};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

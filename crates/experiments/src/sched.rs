//! Global work-stealing scheduler: one persistent worker pool executes
//! the cells of *every* concurrently submitted experiment, under a
//! per-job supervisor that retries and quarantines failures.
//!
//! [`scatter`] flattens a batch of independent jobs onto a process-wide
//! pool. Each batch is a shared slice with a lock-free [`AtomicUsize`]
//! claim cursor (a worker pulls the next job with one `fetch_add`, no
//! queue lock) and a batched result drop-off: a worker accumulates its
//! results privately and merges them under the batch lock once, when its
//! participation ends. Results are re-sorted by input index, so the
//! output is byte-identical no matter how many workers ran or how the
//! cursor interleaved — the same discipline the old per-call
//! `parallel_map` pool proved with the `RLPM_THREADS=1` vs `4` test.
//!
//! **Supervision.** A job that panics (or is killed by an armed
//! [`simkit::failpoint`] plan at the [`simkit::failpoint::SITE_SCHED_JOB`]
//! site) no longer aborts the whole sweep: the supervisor re-runs it up
//! to [`max_retries`] times with a bounded deterministic backoff, then
//! **quarantines** it — the panic payload and cell position are recorded
//! in the process-wide [`quarantine_report`], the job's result slot
//! stays empty, and every other cell of the batch still completes. The
//! submitting layer decides what an incomplete batch means (the
//! experiment tables treat it as a failed section; the run then exits
//! non-zero with the quarantine report).
//!
//! Unlike the old scoped pool, workers are **daemon threads shared by
//! the whole process**: several experiments (the `regen-tables` sections
//! run concurrently) feed batches into one queue, and every idle worker
//! steals from whichever batch still has unclaimed jobs — no
//! inter-experiment barrier. The submitting thread participates in its
//! own batch too, so `scatter` never deadlocks even if no worker thread
//! could be spawned, and a nested simulation that blocks on the
//! in-flight memoisation in [`crate::cache`] is always unblocked by the
//! worker computing that entry (memoised computations never wait on a
//! batch, so the wait graph stays acyclic).
//!
//! `RLPM_THREADS` caps the pool exactly as before: it is re-read on
//! every call, and a value of `1` bypasses the pool entirely for a
//! sequential in-place map (which runs the *same* supervisor, so retry
//! and quarantine behave identically at any thread count).
//!
//! **Progress.** Every completed job (quarantined ones included) pushes
//! one [`simkit::obs::emit_progress`] event carrying the batch label and
//! a live `done/total` — the seam the `rlpm-serve` front door streams to
//! its clients. With no subscribers the emit is a single relaxed load,
//! so batch results stay bit-identical whether anyone listens or not.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use simkit::obs::Counter;

/// Locks a mutex, recovering the guard if another worker panicked while
/// holding it. The critical sections in this module never panic, so a
/// poisoned lock still protects coherent data; job panics are caught per
/// job by the supervisor.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The worker count: `RLPM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub(crate) fn thread_count() -> usize {
    let configured = std::env::var("RLPM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0);
    match configured {
        Some(t) => t,
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    }
}

/// Default retry budget: a failing job runs at most `1 + 2` times.
pub const DEFAULT_MAX_RETRIES: u32 = 2;
/// First backoff step; doubles per retry up to [`BACKOFF_CAP_MS`].
const BACKOFF_BASE_MS: u64 = 5;
/// Upper bound on a single backoff sleep.
const BACKOFF_CAP_MS: u64 = 100;

/// Process-wide retry budget, set from `--max-retries`.
static MAX_RETRIES: AtomicU64 = AtomicU64::new(DEFAULT_MAX_RETRIES as u64);
/// Total job retries this process (for end-of-run reports).
static RETRIES: AtomicU64 = AtomicU64::new(0);
/// Quarantined jobs, appended as they are declared dead.
static QUARANTINE: Mutex<Vec<QuarantineRecord>> = Mutex::new(Vec::new());

/// Obs counter mirroring [`retry_count`].
static OBS_RETRIES: Counter = Counter::new("sched.retries");
/// Obs counter mirroring the quarantine report length.
static OBS_QUARANTINED: Counter = Counter::new("sched.quarantined");

/// Sets the per-job retry budget (`n` re-runs after the first failure).
pub fn set_max_retries(n: u32) {
    MAX_RETRIES.store(u64::from(n), Ordering::Relaxed); // xtask-atomics: plain config cell written once at startup; readers tolerate any interleaving
}

/// The current per-job retry budget.
pub fn max_retries() -> u32 {
    MAX_RETRIES.load(Ordering::Relaxed) as u32 // xtask-atomics: plain config cell; see set_max_retries
}

/// Total job retries performed by this process so far.
pub fn retry_count() -> u64 {
    RETRIES.load(Ordering::Relaxed) // xtask-atomics: statistics counter; reporting tolerates in-flight increments
}

/// Registers the supervisor's obs counters (zero-valued) so they appear
/// in a [`simkit::obs::MetricsSnapshot`] even before the first retry.
pub(crate) fn register_obs() {
    OBS_RETRIES.add(0);
    OBS_QUARANTINED.add(0);
}

/// One quarantined job: which batch and cell died, after how many
/// attempts, and with what panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The submitting batch's label (the experiment section, e.g. `e1`).
    pub batch: &'static str,
    /// The job's index within its batch — the cell position.
    pub index: usize,
    /// Total attempts made (first run plus retries).
    pub attempts: u32,
    /// The panic payload, rendered to a string.
    pub message: String,
}

impl fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantined {}[{}] after {} attempt(s): {}",
            self.batch, self.index, self.attempts, self.message
        )
    }
}

/// A snapshot of every quarantined job so far, sorted by batch label
/// then cell index — deterministic regardless of worker interleaving.
pub fn quarantine_report() -> Vec<QuarantineRecord> {
    let mut report = lock(&QUARANTINE).clone();
    report.sort_by(|a, b| (a.batch, a.index).cmp(&(b.batch, b.index)));
    report
}

/// Clears the quarantine registry (one CLI invocation = one report).
pub fn clear_quarantine() {
    lock(&QUARANTINE).clear();
}

/// A run that completed but left quarantined cells behind; carries the
/// report length for exit-code decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineError {
    /// How many cells were quarantined.
    pub cells: usize,
}

impl fmt::Display for QuarantineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cell(s) quarantined after retries; results are incomplete",
            self.cells
        )
    }
}

impl std::error::Error for QuarantineError {}

/// Renders a caught panic payload for the quarantine report.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Deterministic bounded backoff before retry `attempt` (1-based).
fn backoff_ms(attempt: u32) -> u64 {
    BACKOFF_BASE_MS
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(8))
        .min(BACKOFF_CAP_MS)
}

/// Runs one job under the supervisor: consult the `sched/job` failpoint,
/// run, and on panic retry with backoff up to the process-wide budget.
/// A job that exhausts its budget is recorded in the quarantine registry
/// and returned as `Err`.
fn supervise<T, R, F>(
    label: &'static str,
    f: &F,
    item: &T,
    index: usize,
) -> Result<R, QuarantineRecord>
where
    T: Clone,
    F: Fn(T) -> R,
{
    let budget = max_retries();
    let mut attempt: u32 = 0;
    loop {
        let job = item.clone();
        // A panicking job must not take the pool down (daemon workers
        // are shared by unrelated experiments); the supervisor catches
        // it here, retries, and finally quarantines.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            simkit::failpoint::fire(simkit::failpoint::SITE_SCHED_JOB, index as u64);
            f(job)
        }));
        match outcome {
            Ok(result) => return Ok(result),
            Err(payload) => {
                if attempt >= budget {
                    let record = QuarantineRecord {
                        batch: label,
                        index,
                        attempts: attempt + 1,
                        message: panic_message(payload.as_ref()),
                    };
                    lock(&QUARANTINE).push(record.clone());
                    OBS_QUARANTINED.inc();
                    return Err(record);
                }
                attempt += 1;
                RETRIES.fetch_add(1, Ordering::Relaxed); // xtask-atomics: statistics counter; never synchronises job state
                OBS_RETRIES.inc();
                std::thread::sleep(Duration::from_millis(backoff_ms(attempt)));
            }
        }
    }
}

/// What [`scatter`] hands back: per-cell results in input order (`None`
/// marks a quarantined cell) plus this batch's quarantine records,
/// sorted by index.
pub(crate) struct BatchOutcome<R> {
    /// One slot per input item, `None` where the job was quarantined.
    pub results: Vec<Option<R>>,
    /// The quarantined jobs of *this* batch.
    pub quarantined: Vec<QuarantineRecord>,
}

/// A type-erased batch the pool's workers can participate in.
trait Task: Send + Sync {
    /// Claims and runs jobs until the batch's cursor is exhausted.
    fn participate(&self);
    /// Whether unclaimed jobs remain (used to prune the queue).
    fn has_pending(&self) -> bool;
}

/// Pending batches, oldest first. Workers steal from the front; a batch
/// leaves the queue once its cursor is exhausted (its last jobs may
/// still be running on the threads that claimed them).
static QUEUE: Mutex<Vec<Arc<dyn Task>>> = Mutex::new(Vec::new());
/// Wakes sleeping workers when a batch arrives.
static QUEUE_CV: Condvar = Condvar::new();
/// How many daemon workers have been spawned so far.
static SPAWNED: Mutex<usize> = Mutex::new(0);

/// Grows the daemon pool to at least `target` workers. Spawn failures
/// are swallowed: the submitting thread always participates, so a
/// smaller (even empty) pool only costs parallelism, never progress.
fn ensure_workers(target: usize) {
    let mut spawned = lock(&SPAWNED);
    while *spawned < target {
        let built = std::thread::Builder::new()
            .name("rlpm-sched".into())
            .spawn(worker_loop);
        if built.is_err() {
            break;
        }
        *spawned += 1;
    }
}

/// Daemon worker body: sleep until a batch has unclaimed jobs, help
/// drain it, prune exhausted batches, repeat forever.
fn worker_loop() {
    loop {
        let task: Arc<dyn Task> = {
            let mut queue = lock(&QUEUE);
            loop {
                queue.retain(|t| t.has_pending());
                if let Some(t) = queue.first() {
                    break Arc::clone(t);
                }
                queue = match QUEUE_CV.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        task.participate();
    }
}

/// Shared mutable state of one batch, guarded by a single lock that
/// doubles as the completion condvar's mutex.
struct BatchState<R> {
    /// Index-tagged results, in drop-off order.
    results: Vec<(usize, R)>,
    /// Jobs claimed *and* finished (counted per participation, after the
    /// drop-off, so `completed == len` implies the results are merged).
    /// Quarantined jobs count as finished.
    completed: usize,
    /// Quarantined jobs of this batch, in drop-off order.
    quarantined: Vec<QuarantineRecord>,
}

/// One `scatter` call: the job slice, its claim cursor and the shared
/// result state.
struct Batch<T, R, F> {
    /// The submitting experiment's label, carried into quarantine records.
    label: &'static str,
    /// Job slots; each is taken exactly once by the claiming worker.
    items: Vec<Mutex<Option<T>>>,
    /// Lock-free claim cursor: `fetch_add` hands out each index once.
    next: AtomicUsize,
    /// Jobs finished (quarantined ones included), counted as they
    /// complete so progress events carry a live `done/total`.
    finished: AtomicUsize,
    state: Mutex<BatchState<R>>,
    done: Condvar,
    f: F,
}

impl<T, R, F> Batch<T, R, F>
where
    T: Clone + Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fn new(label: &'static str, items: Vec<T>, f: F) -> Self {
        Batch {
            label,
            items: items.into_iter().map(|i| Mutex::new(Some(i))).collect(),
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            state: Mutex::new(BatchState {
                results: Vec::new(),
                completed: 0,
                quarantined: Vec::new(),
            }),
            done: Condvar::new(),
            f,
        }
    }

    /// Claims jobs off the cursor until it runs out, then merges this
    /// thread's results in one drop-off and signals completion if this
    /// participation finished the batch.
    fn run_to_exhaustion(&self) {
        let n = self.items.len();
        let mut local: Vec<(usize, R)> = Vec::new();
        let mut local_quarantined: Vec<QuarantineRecord> = Vec::new();
        let mut claimed = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed); // xtask-atomics: claim by atomic RMW; uniqueness comes from fetch_add itself, results merge under the batch mutex
            if i >= n {
                break;
            }
            claimed += 1;
            let Some(slot) = self.items.get(i) else {
                continue;
            };
            let Some(item) = lock(slot).take() else {
                continue;
            };
            match supervise(self.label, &self.f, &item, i) {
                Ok(result) => local.push((i, result)),
                Err(record) => local_quarantined.push(record),
            }
            // xtask-atomics: monotone completion count for progress events; result integrity comes from the batch mutex, not this counter
            let finished = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
            simkit::obs::emit_progress(self.label, finished as u64, n as u64);
        }
        if claimed == 0 {
            return;
        }
        let mut state = lock(&self.state);
        state.results.append(&mut local);
        state.quarantined.append(&mut local_quarantined);
        state.completed += claimed;
        if state.completed >= n {
            self.done.notify_all();
        }
    }

    /// Blocks until every job has completed and its result is merged.
    fn wait(&self) -> BatchState<R> {
        let mut state = lock(&self.state);
        while state.completed < self.items.len() {
            state = match self.done.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        BatchState {
            results: std::mem::take(&mut state.results),
            completed: state.completed,
            quarantined: std::mem::take(&mut state.quarantined),
        }
    }
}

impl<T, R, F> Task for Batch<T, R, F>
where
    T: Clone + Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    fn participate(&self) {
        self.run_to_exhaustion();
    }

    fn has_pending(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.items.len() // xtask-atomics: advisory progress probe; a stale read only causes one extra claim attempt
    }
}

/// Assembles ordered per-slot results from index-tagged drop-offs.
fn assemble<R>(
    n: usize,
    tagged: Vec<(usize, R)>,
    mut quarantined: Vec<QuarantineRecord>,
) -> BatchOutcome<R> {
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        if let Some(slot) = results.get_mut(i) {
            *slot = Some(r);
        }
    }
    quarantined.sort_by_key(|q| q.index);
    debug_assert_eq!(
        results.iter().filter(|r| r.is_some()).count() + quarantined.len(),
        n,
        "every job either produces a result or a quarantine record"
    );
    BatchOutcome {
        results,
        quarantined,
    }
}

/// Applies `f` to every item on the global pool under the per-job
/// supervisor, returning per-slot results in input order (`None` where
/// a job was quarantined) plus this batch's quarantine records. The
/// calling thread participates, so this also works with zero pool
/// workers; with `RLPM_THREADS=1` (or a single item) it degenerates to
/// a sequential supervised map with no pool involvement.
///
/// Results are bit-identical across worker counts: jobs are independent,
/// index-tagged and re-sorted, and failpoint decisions are pure
/// functions of the cell index, exactly like the scoped pool this
/// replaces.
pub(crate) fn scatter<T, R, F>(label: &'static str, items: Vec<T>, f: F) -> BatchOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return BatchOutcome {
            results: Vec::new(),
            quarantined: Vec::new(),
        };
    }
    let threads = thread_count().min(n);
    if threads <= 1 {
        let mut tagged = Vec::new();
        let mut quarantined = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match supervise(label, &f, item, i) {
                Ok(result) => tagged.push((i, result)),
                Err(record) => quarantined.push(record),
            }
            simkit::obs::emit_progress(label, (i + 1) as u64, n as u64);
        }
        return assemble(n, tagged, quarantined);
    }

    ensure_workers(threads.saturating_sub(1));
    let batch = Arc::new(Batch::new(label, items, f));
    {
        let task: Arc<dyn Task> = Arc::clone(&batch) as Arc<dyn Task>;
        lock(&QUEUE).push(task);
    }
    QUEUE_CV.notify_all();

    batch.run_to_exhaustion();
    let state = batch.wait();
    assemble(n, state.results, state.quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwraps every slot; the callers below expect no quarantine.
    fn all<R>(outcome: BatchOutcome<R>) -> Vec<R> {
        assert!(outcome.quarantined.is_empty(), "unexpected quarantine");
        outcome.results.into_iter().flatten().collect()
    }

    #[test]
    fn preserves_order() {
        let out = all(scatter("t-order", (0..1000).collect(), |x: i32| x * 2));
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = all(scatter("t-empty", Vec::<i32>::new(), |x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(all(scatter("t-single", vec![7], |x: i32| x + 1)), vec![8]);
    }

    #[test]
    fn order_preserved_under_skewed_work() {
        // Later items finish first; merging must still restore order.
        let out = all(scatter("t-skew", (0..64).collect(), |x: u64| {
            std::thread::sleep(std::time::Duration::from_micros(64 - x));
            x * x
        }));
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_batches_share_the_pool() {
        // Two submitting threads feed the one queue at once; each batch
        // must still come back complete and ordered.
        let handles: Vec<_> = (0..2)
            .map(|offset: i64| {
                std::thread::spawn(move || {
                    all(scatter("t-conc", (0..256).collect(), move |x: i64| {
                        x + offset
                    }))
                })
            })
            .collect();
        for (offset, handle) in handles.into_iter().enumerate() {
            let out = handle.join().expect("batch thread");
            assert_eq!(out, (0..256).map(|x| x + offset as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn persistent_panic_is_quarantined_not_propagated() {
        let outcome = scatter("t-quarantine", (0..32).collect(), |x: u32| {
            assert!(x != 17, "boom at 17");
            x
        });
        // The batch completes: every other cell has its result.
        assert_eq!(outcome.results.len(), 32);
        assert!(outcome.results.get(17).is_some_and(Option::is_none));
        assert_eq!(
            outcome
                .results
                .iter()
                .filter(|result| result.is_some())
                .count(),
            31
        );
        // The dead cell is quarantined with its payload and attempts.
        assert_eq!(outcome.quarantined.len(), 1);
        let record = outcome.quarantined.first().expect("one record");
        assert_eq!((record.batch, record.index), ("t-quarantine", 17));
        assert_eq!(record.attempts, max_retries() + 1);
        assert!(record.message.contains("boom at 17"), "{}", record.message);
        // And reported process-wide, deterministically sorted.
        assert!(quarantine_report()
            .iter()
            .any(|r| r.batch == "t-quarantine" && r.index == 17));
        // The pool survives a quarantining batch.
        let out = all(scatter("t-survive", (0..32).collect(), |x: u32| x + 1));
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        use std::collections::BTreeMap;
        let attempts: Arc<Mutex<BTreeMap<u32, u32>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let seen = Arc::clone(&attempts);
        let before = retry_count();
        let outcome = scatter("t-retry", (0..8).collect(), move |x: u32| {
            let mut map = lock(&seen);
            let tries = map.entry(x).or_insert(0);
            *tries += 1;
            let first = *tries == 1;
            drop(map);
            assert!(!(x == 3 && first), "transient failure on first attempt");
            x * 10
        });
        assert!(outcome.quarantined.is_empty(), "retry must recover");
        let results: Vec<u32> = outcome.results.into_iter().flatten().collect();
        assert_eq!(results, (0..8).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(lock(&attempts).get(&3), Some(&2), "cell 3 ran twice");
        assert!(retry_count() > before, "the retry was counted");
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(backoff_ms(1), 5);
        assert_eq!(backoff_ms(2), 10);
        assert!((1..=64).all(|a| backoff_ms(a) <= BACKOFF_CAP_MS));
    }
}

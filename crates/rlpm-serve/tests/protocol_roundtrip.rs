//! End-to-end protocol round-trips against a live in-process server.
//!
//! One big serialized test: the result cache, quarantine report and
//! progress seam are process-wide, so the scenarios share a single
//! server and run in a fixed order — cold `eval` first (progress events
//! are only guaranteed while cells actually compute), byte-identity
//! against the library path second, error paths and shutdown last.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use rlpm_serve::client::{request_over_socket, roundtrip};
use rlpm_serve::json::Value;
use rlpm_serve::proto::{MAX_LINE_BYTES, PROTOCOL_VERSION};
use rlpm_serve::Server;

use experiments::e1_energy_per_qos::{run_e1, E1Config};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rlpm-serve-test-{tag}-{}", std::process::id()))
}

fn response_type(v: &Value) -> &str {
    v.get("type").and_then(Value::as_str).unwrap_or("")
}

fn error_code(v: &Value) -> &str {
    v.get("code").and_then(Value::as_str).unwrap_or("")
}

#[test]
fn protocol_round_trips_against_a_live_server() {
    // Fresh cache so the cold eval genuinely computes (and emits
    // progress); quick E1 keeps the computation CI-sized.
    let cache_dir = scratch("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    experiments::cache::configure(Some(cache_dir.clone()));

    let socket = scratch("sock").with_extension("sock");
    let server = Server::bind(&socket).expect("bind test socket");
    let server_thread = std::thread::spawn(move || server.run());

    // --- Version negotiation. ---
    let resp = request_over_socket(
        &socket,
        &format!("{{\"type\":\"hello\",\"version\":{PROTOCOL_VERSION}}}"),
        |_| {},
    )
    .unwrap();
    assert_eq!(response_type(&resp), "hello-ok");
    assert_eq!(
        resp.get("version").and_then(Value::as_u64),
        Some(PROTOCOL_VERSION)
    );
    let resp =
        request_over_socket(&socket, "{\"type\":\"hello\",\"version\":999}", |_| {}).unwrap();
    assert_eq!(response_type(&resp), "error");
    assert_eq!(error_code(&resp), "unsupported-version");

    // --- Cold eval: progress streams while the sweep computes, and the
    // CSV matches the library path byte for byte. ---
    let mut events: Vec<(String, String)> = Vec::new();
    let resp = request_over_socket(
        &socket,
        "{\"type\":\"eval\",\"experiment\":\"e1\",\"quick\":true,\"id\":\"cold\"}",
        |e| {
            events.push((
                response_type(e).to_string(),
                e.get("source")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            ));
        },
    )
    .unwrap();
    assert_eq!(response_type(&resp), "result", "eval failed: {resp:?}");
    assert_eq!(
        resp.get("id").and_then(Value::as_str),
        Some("cold"),
        "id echoed on the terminal response"
    );
    let served_csv = resp
        .get("payload")
        .and_then(|p| p.get("csv"))
        .and_then(Value::as_str)
        .expect("eval payload carries csv")
        .to_string();
    assert_eq!(
        events.first().map(|(t, _)| t.as_str()),
        Some("accepted"),
        "accepted precedes everything: {events:?}"
    );
    assert!(
        events.iter().any(|(t, s)| t == "progress" && s == "e1"),
        "cold eval must stream e1 progress, got {events:?}"
    );

    let soc = soc::SocConfig::odroid_xu3_like().expect("preset is valid");
    let expected_csv = run_e1(&soc, &E1Config::quick())
        .energy_per_qos_table()
        .to_csv();
    assert_eq!(served_csv, expected_csv, "served CSV diverged from run_e1");

    // --- Warm eval: identical answer, now cache-served. ---
    let resp = request_over_socket(
        &socket,
        "{\"type\":\"eval\",\"experiment\":\"e1\",\"quick\":true}",
        |_| {},
    )
    .unwrap();
    assert_eq!(
        resp.get("payload")
            .and_then(|p| p.get("csv"))
            .and_then(Value::as_str),
        Some(expected_csv.as_str())
    );
    let resp = request_over_socket(&socket, "{\"type\":\"status\"}", |_| {}).unwrap();
    let cache = resp.get("payload").and_then(|p| p.get("cache")).unwrap();
    assert_eq!(cache.get("enabled").and_then(Value::as_bool), Some(true));
    assert!(
        cache.get("hits").and_then(Value::as_u64).unwrap_or(0) > 0,
        "warm eval must hit the cache: {resp:?}"
    );

    // --- Simulate: a cheap baseline cell returns typed metrics. ---
    let resp = request_over_socket(
        &socket,
        "{\"type\":\"simulate\",\"scenario\":\"idle\",\"policy\":\"ondemand\",\"secs\":2}",
        |_| {},
    )
    .unwrap();
    assert_eq!(response_type(&resp), "result", "simulate failed: {resp:?}");
    let metrics = resp.get("payload").and_then(|p| p.get("metrics")).unwrap();
    assert!(metrics.get("energy-j").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(metrics.get("epochs").and_then(Value::as_u64).unwrap() > 0);

    // --- Typed rejection of bad requests. ---
    let resp = request_over_socket(
        &socket,
        "{\"type\":\"simulate\",\"scenario\":\"quake\",\"id\":3}",
        |_| {},
    )
    .unwrap();
    assert_eq!(error_code(&resp), "bad-request");
    assert_eq!(resp.get("id").and_then(Value::as_u64), Some(3));
    let resp = request_over_socket(&socket, "{\"type\":\"frobnicate\"}", |_| {}).unwrap();
    assert_eq!(error_code(&resp), "unknown-type");

    // --- Malformed JSON: typed error, connection survives for the next
    // request on the same stream. ---
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let resp = roundtrip(&mut reader, &mut writer, "not json at all", |_| {}).unwrap();
        assert_eq!(error_code(&resp), "bad-json");
        let resp = roundtrip(&mut reader, &mut writer, "{\"type\":\"status\"}", |_| {}).unwrap();
        assert_eq!(
            response_type(&resp),
            "result",
            "connection must survive bad JSON"
        );
    }

    // --- Oversized line: rejected and discarded, connection survives. ---
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let huge = vec![b'a'; MAX_LINE_BYTES + 16];
        writer.write_all(&huge).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = rlpm_serve::json::parse(line.trim_end()).unwrap();
        assert_eq!(error_code(&resp), "oversized-line");
        let resp = roundtrip(&mut reader, &mut writer, "{\"type\":\"status\"}", |_| {}).unwrap();
        assert_eq!(
            response_type(&resp),
            "result",
            "connection must survive an oversized line"
        );
    }

    // --- Abrupt disconnect mid-line: the server thread must not die. ---
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.write_all(b"{\"type\":\"stat").unwrap();
        // Dropping the stream closes the connection with an unterminated
        // partial line in flight.
    }
    let resp = request_over_socket(&socket, "{\"type\":\"status\"}", |_| {}).unwrap();
    assert_eq!(
        response_type(&resp),
        "result",
        "server must survive an abrupt disconnect"
    );

    // --- Graceful shutdown: acknowledged, then the listener stops and
    // the socket file is removed. ---
    let resp = request_over_socket(&socket, "{\"type\":\"shutdown\"}", |_| {}).unwrap();
    assert_eq!(response_type(&resp), "result");
    assert_eq!(
        resp.get("payload")
            .and_then(|p| p.get("stopping"))
            .and_then(Value::as_bool),
        Some(true)
    );
    server_thread
        .join()
        .expect("server thread joins")
        .expect("server run loop exits cleanly");
    assert!(!socket.exists(), "socket file removed on shutdown");

    let _ = std::fs::remove_dir_all(&cache_dir);
}

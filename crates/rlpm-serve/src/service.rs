//! Request execution: validated protocol requests mapped onto the
//! `experiments` harness.
//!
//! The mapping is deliberately thin and mirrors the CLI paths:
//!
//! * `simulate` runs one evaluation cell through
//!   [`experiments::eval_cells_batched`], so identical concurrent
//!   requests coalesce in the content-addressed cache's memo layer and
//!   repeat requests are answered from disk.
//! * `train` calls [`experiments::train_rl_governor`] with the same
//!   arguments `rlpm-sim train` passes, so the returned artifact
//!   checksum matches a CLI-trained file byte for byte.
//! * `eval` runs the E1 sweep exactly as `regen-tables` does (same SoC
//!   preset, same quick config), so the returned CSV is byte-identical
//!   to `results/e1_energy_per_qos.csv` — pinned by an integration test.
//! * `fleet` builds the same batched population as `rlpm-sim fleet`,
//!   per-lane seeds included.
//!
//! Every request runs under `catch_unwind`: a sweep whose cells were
//! quarantined by the scheduler (see `experiments::sched`) becomes a
//! typed `quarantined` error response listing the cells — the protocol
//! twin of the CLI's exit-4 convention — and any other panic becomes an
//! `internal` error instead of killing the connection thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use experiments::e1_energy_per_qos::{run_e1, E1Config};
use experiments::{
    eval_cells_batched, run_batch, train_rl_governor, BatchLane, EvalCell, PolicyKind, RunConfig,
    RunMetrics, TrainingProtocol,
};
use governors::GovernorKind;
use soc::{DeviceBatch, Soc, SocConfig};
use workload::ScenarioKind;

use crate::json::Value;
use crate::proto::{
    ErrorCode, EvalSpec, FleetSpec, Request, RequestError, Response, SimulateSpec, TrainSpec,
    PROTOCOL_VERSION,
};

/// Upper bound on `fleet` lanes per request: enough for every benched
/// population, small enough that one request cannot exhaust memory.
pub const MAX_FLEET_LANES: u64 = 4096;

/// Shared per-server request state.
#[derive(Debug, Default)]
pub struct Service {
    requests: AtomicU64,
}

/// The outcome of serving one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The terminal response to write.
    pub response: Response,
    /// Whether the server should stop accepting connections.
    pub shutdown: bool,
}

impl Service {
    /// Creates a fresh service with zeroed counters.
    pub fn new() -> Service {
        Service::default()
    }

    /// Serves one validated request to completion, converting panics and
    /// scheduler quarantine into typed error responses.
    pub fn handle(&self, request: &Request) -> Handled {
        self.requests.fetch_add(1, Ordering::Relaxed); // xtask-atomics: statistics counter surfaced by `status`; no ordering dependencies
        let shutdown = matches!(request, Request::Shutdown);
        let quarantine_before = experiments::quarantine_report();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run(request)));
        let quarantined: Vec<_> = experiments::quarantine_report()
            .into_iter()
            .filter(|r| !quarantine_before.contains(r))
            .collect();
        let response = if quarantined.is_empty() {
            match outcome {
                Ok(response) => response,
                Err(payload) => Response::Error {
                    code: ErrorCode::Internal,
                    message: panic_text(payload.as_ref()),
                    payload: None,
                },
            }
        } else {
            // The scheduler's summary panic (or a survived partial run)
            // with fresh quarantine records: report the cells, typed.
            let records: Vec<Value> = quarantined
                .iter()
                .map(|r| {
                    Value::Obj(vec![
                        ("batch".into(), Value::str(r.batch)),
                        ("index".into(), Value::num_u64(r.index as u64)),
                        ("attempts".into(), Value::num_u64(u64::from(r.attempts))),
                        ("message".into(), Value::str(r.message.clone())),
                    ])
                })
                .collect();
            Response::Error {
                code: ErrorCode::Quarantined,
                message: experiments::QuarantineError {
                    cells: quarantined.len(),
                }
                .to_string(),
                payload: Some(Value::Obj(vec![
                    ("cells".into(), Value::num_u64(quarantined.len() as u64)),
                    ("records".into(), Value::Arr(records)),
                ])),
            }
        };
        Handled { response, shutdown }
    }

    fn run(&self, request: &Request) -> Response {
        match request {
            Request::Hello { version } => {
                if *version != PROTOCOL_VERSION {
                    return error_response(RequestError {
                        code: ErrorCode::UnsupportedVersion,
                        message: format!(
                            "this server speaks protocol version {PROTOCOL_VERSION}, not {version}"
                        ),
                    });
                }
                Response::HelloOk {
                    version: PROTOCOL_VERSION,
                }
            }
            Request::Simulate(spec) => match simulate(spec) {
                Ok(payload) => Response::Result { payload },
                Err(e) => error_response(e),
            },
            Request::Train(spec) => match train(spec) {
                Ok(payload) => Response::Result { payload },
                Err(e) => error_response(e),
            },
            Request::Eval(spec) => match eval(spec) {
                Ok(payload) => Response::Result { payload },
                Err(e) => error_response(e),
            },
            Request::Fleet(spec) => match fleet(spec) {
                Ok(payload) => Response::Result { payload },
                Err(e) => error_response(e),
            },
            Request::Status => Response::Result {
                payload: self.status_payload(),
            },
            Request::Shutdown => Response::Result {
                payload: Value::Obj(vec![("stopping".into(), Value::Bool(true))]),
            },
        }
    }

    fn status_payload(&self) -> Value {
        let stats = experiments::cache::stats();
        let cache = Value::Obj(vec![
            (
                "enabled".into(),
                Value::Bool(experiments::cache::is_enabled()),
            ),
            ("hits".into(), Value::num_u64(stats.hits)),
            ("misses".into(), Value::num_u64(stats.misses)),
            ("evictions".into(), Value::num_u64(stats.evictions)),
            ("stores".into(), Value::num_u64(stats.stores)),
            (
                "store-failures".into(),
                Value::num_u64(stats.store_failures),
            ),
        ]);
        Value::Obj(vec![
            ("version".into(), Value::num_u64(PROTOCOL_VERSION)),
            (
                "requests".into(),
                Value::num_u64(self.requests.load(Ordering::Relaxed)), // xtask-atomics: statistics counter; see fetch_add in handle
            ),
            ("cache".into(), cache),
            ("retries".into(), Value::num_u64(experiments::retry_count())),
            (
                "quarantined".into(),
                Value::num_u64(experiments::quarantine_report().len() as u64),
            ),
            (
                "max-retries".into(),
                Value::num_u64(u64::from(experiments::max_retries())),
            ),
        ])
    }
}

/// Resolves a SoC preset name (same catalogue as the CLI `--soc` flag).
fn resolve_soc(name: &str) -> Result<SocConfig, RequestError> {
    let config = match name {
        "xu3" => SocConfig::odroid_xu3_like(),
        "xu3-cstates" => SocConfig::odroid_xu3_like_cstates(),
        "symmetric" => SocConfig::symmetric_quad(),
        other => {
            return Err(RequestError {
                code: ErrorCode::BadRequest,
                message: format!("unknown SoC preset {other:?} (xu3 | xu3-cstates | symmetric)"),
            })
        }
    };
    config.map_err(|e| RequestError {
        code: ErrorCode::Internal,
        message: format!("SoC preset failed validation: {e}"),
    })
}

/// Resolves a scenario name: the catalog plus `standby`.
fn resolve_scenario(name: &str) -> Result<ScenarioKind, RequestError> {
    if name == ScenarioKind::Standby.name() {
        return Ok(ScenarioKind::Standby);
    }
    ScenarioKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            let mut names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
            names.push(ScenarioKind::Standby.name());
            RequestError {
                code: ErrorCode::BadRequest,
                message: format!("unknown scenario {name:?} (one of: {})", names.join(", ")),
            }
        })
}

/// Resolves a policy name (six baselines plus the RL variants).
fn resolve_policy(name: &str) -> Result<PolicyKind, RequestError> {
    if name == "rlpm" {
        return Ok(PolicyKind::Rl);
    }
    if name == "rlpm-hw" {
        return Ok(PolicyKind::RlHw);
    }
    GovernorKind::SIX_BASELINES
        .into_iter()
        .find(|k| k.name() == name)
        .map(PolicyKind::Baseline)
        .ok_or_else(|| RequestError {
            code: ErrorCode::BadRequest,
            message: format!(
                "unknown policy {name:?} (performance | powersave | ondemand | conservative | interactive | schedutil | rlpm | rlpm-hw)"
            ),
        })
}

fn error_response(e: RequestError) -> Response {
    Response::Error {
        code: e.code,
        message: e.message,
        payload: None,
    }
}

fn metrics_payload(m: &RunMetrics) -> Value {
    Value::Obj(vec![
        ("energy-j".into(), Value::Num(m.energy_j)),
        ("avg-power-w".into(), Value::Num(m.avg_power_w)),
        ("energy-per-qos".into(), Value::Num(m.energy_per_qos)),
        ("qos-ratio".into(), Value::Num(m.qos.qos_ratio())),
        ("violations".into(), Value::num_u64(m.qos.violations)),
        ("on-time".into(), Value::num_u64(m.qos.on_time)),
        ("completed".into(), Value::num_u64(m.qos.completed)),
        ("transitions".into(), Value::num_u64(m.transitions)),
        ("epochs".into(), Value::num_u64(m.epochs)),
    ])
}

fn simulate(spec: &SimulateSpec) -> Result<Value, RequestError> {
    let soc_cfg = resolve_soc(&spec.soc)?;
    let scenario = resolve_scenario(&spec.scenario)?;
    let policy = resolve_policy(&spec.policy)?;
    let cell = EvalCell {
        scenario,
        policy,
        seed: spec.seed,
    };
    let metrics = eval_cells_batched(
        &soc_cfg,
        &[cell],
        TrainingProtocol::default(),
        RunConfig::seconds(spec.secs),
    );
    let Some(Some(m)) = metrics.into_iter().next() else {
        return Err(RequestError {
            code: ErrorCode::Internal,
            message: "simulation failed to run".into(),
        });
    };
    Ok(Value::Obj(vec![
        ("scenario".into(), Value::str(spec.scenario.clone())),
        ("policy".into(), Value::str(spec.policy.clone())),
        ("soc".into(), Value::str(spec.soc.clone())),
        ("secs".into(), Value::num_u64(spec.secs)),
        ("seed".into(), Value::num_u64(spec.seed)),
        ("metrics".into(), metrics_payload(&m)),
    ]))
}

fn train(spec: &TrainSpec) -> Result<Value, RequestError> {
    let soc_cfg = resolve_soc(&spec.soc)?;
    let scenario = resolve_scenario(&spec.scenario)?;
    let policy = train_rl_governor(
        &soc_cfg,
        scenario,
        TrainingProtocol {
            episodes: spec.episodes,
            episode_secs: spec.episode_secs,
        },
        spec.seed,
    );
    let bytes = rlpm::persist::save_policy(&policy);
    Ok(Value::Obj(vec![
        ("scenario".into(), Value::str(spec.scenario.clone())),
        ("soc".into(), Value::str(spec.soc.clone())),
        ("episodes".into(), Value::num_u64(u64::from(spec.episodes))),
        ("episode-secs".into(), Value::num_u64(spec.episode_secs)),
        ("seed".into(), Value::num_u64(spec.seed)),
        ("updates".into(), Value::num_u64(policy.agent().updates())),
        (
            "states".into(),
            Value::num_u64(policy.config().num_states() as u64),
        ),
        ("artifact-bytes".into(), Value::num_u64(bytes.len() as u64)),
        (
            "artifact-fnv".into(),
            Value::str(format!("{:016x}", fnv1a64(&bytes))),
        ),
    ]))
}

fn eval(spec: &EvalSpec) -> Result<Value, RequestError> {
    if spec.experiment != "e1" {
        return Err(RequestError {
            code: ErrorCode::BadRequest,
            message: format!(
                "unknown experiment {:?} (only \"e1\" is served)",
                spec.experiment
            ),
        });
    }
    // Same SoC and config as `regen-tables`' E1 section, so the CSV is
    // byte-identical to `results/e1_energy_per_qos.csv`.
    let soc_cfg = resolve_soc("xu3")?;
    let config = if spec.quick {
        E1Config::quick()
    } else {
        E1Config::default()
    };
    let result = run_e1(&soc_cfg, &config);
    Ok(Value::Obj(vec![
        ("experiment".into(), Value::str("e1")),
        ("quick".into(), Value::Bool(spec.quick)),
        (
            "csv".into(),
            Value::str(result.energy_per_qos_table().to_csv()),
        ),
    ]))
}

fn fleet(spec: &FleetSpec) -> Result<Value, RequestError> {
    if spec.lanes == 0 || spec.lanes > MAX_FLEET_LANES {
        return Err(RequestError {
            code: ErrorCode::BadRequest,
            message: format!("\"lanes\" must be in 1..={MAX_FLEET_LANES}"),
        });
    }
    let soc_cfg = resolve_soc(&spec.soc)?;
    let scenario = resolve_scenario(&spec.scenario)?;
    let policy = resolve_policy(&spec.policy)?;
    let lanes_n = spec.lanes as usize;
    let socs: Result<Vec<_>, _> = (0..lanes_n).map(|_| Soc::new(soc_cfg.clone())).collect();
    let socs = socs.map_err(|e| RequestError {
        code: ErrorCode::Internal,
        message: format!("SoC construction failed: {e}"),
    })?;
    let mut batch = DeviceBatch::new(socs).map_err(|e| RequestError {
        code: ErrorCode::Internal,
        message: format!("batch construction failed: {e}"),
    })?;
    // Per-lane seed derivation matches `rlpm-sim fleet` exactly.
    let mut lanes: Vec<BatchLane> = (0..spec.lanes)
        .map(|i| BatchLane {
            scenario: scenario.build(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i)),
            governor: policy.build_trained(
                &soc_cfg,
                scenario,
                TrainingProtocol::default(),
                spec.seed,
            ),
            faults: None,
        })
        .collect();
    let metrics = run_batch(&mut batch, &mut lanes, RunConfig::seconds(spec.secs));

    let total_energy: f64 = metrics.iter().map(|m| m.energy_j).sum();
    let total_violations: u64 = metrics.iter().map(|m| m.qos.violations).sum();
    let total_transitions: u64 = metrics.iter().map(|m| m.transitions).sum();
    let mean_qos =
        metrics.iter().map(|m| m.qos.qos_ratio()).sum::<f64>() / metrics.len().max(1) as f64;
    Ok(Value::Obj(vec![
        ("scenario".into(), Value::str(spec.scenario.clone())),
        ("policy".into(), Value::str(spec.policy.clone())),
        ("soc".into(), Value::str(spec.soc.clone())),
        ("lanes".into(), Value::num_u64(spec.lanes)),
        ("secs".into(), Value::num_u64(spec.secs)),
        ("seed".into(), Value::num_u64(spec.seed)),
        ("total-energy-j".into(), Value::Num(total_energy)),
        (
            "mean-energy-j".into(),
            Value::Num(total_energy / metrics.len().max(1) as f64),
        ),
        ("mean-qos-ratio".into(), Value::Num(mean_qos)),
        ("violations".into(), Value::num_u64(total_violations)),
        ("transitions".into(), Value::num_u64(total_transitions)),
    ]))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a-64 over a byte slice (artifact fingerprints in responses).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_resolution_matches_the_cli_catalogues() {
        assert!(resolve_scenario("video").is_ok());
        assert!(resolve_scenario("standby").is_ok());
        assert!(resolve_scenario("nope").is_err());
        assert!(resolve_policy("schedutil").is_ok());
        assert!(resolve_policy("rlpm").is_ok());
        assert!(resolve_policy("rlpm-hw").is_ok());
        assert!(resolve_policy("turbo").is_err());
        assert!(resolve_soc("xu3").is_ok());
        assert!(resolve_soc("xu3-cstates").is_ok());
        assert!(resolve_soc("symmetric").is_ok());
        assert!(resolve_soc("zen5").is_err());
    }

    #[test]
    fn hello_negotiates_and_rejects_future_versions() {
        let service = Service::new();
        let h = service.handle(&Request::Hello {
            version: PROTOCOL_VERSION,
        });
        assert_eq!(
            h.response,
            Response::HelloOk {
                version: PROTOCOL_VERSION
            }
        );
        assert!(!h.shutdown);
        let h = service.handle(&Request::Hello {
            version: PROTOCOL_VERSION + 1,
        });
        assert!(matches!(
            h.response,
            Response::Error {
                code: ErrorCode::UnsupportedVersion,
                ..
            }
        ));
    }

    #[test]
    fn shutdown_is_acknowledged_then_signalled() {
        let service = Service::new();
        let h = service.handle(&Request::Shutdown);
        assert!(h.shutdown);
        assert!(matches!(h.response, Response::Result { .. }));
    }

    #[test]
    fn status_reports_request_count_and_cache_state() {
        let service = Service::new();
        let _ = service.handle(&Request::Status);
        let h = service.handle(&Request::Status);
        let Response::Result { payload } = h.response else {
            panic!("status must succeed");
        };
        assert_eq!(
            payload.get("requests").and_then(Value::as_u64),
            Some(2),
            "both status requests counted"
        );
        assert!(payload
            .get("cache")
            .and_then(|c| c.get("enabled"))
            .is_some());
        assert_eq!(
            payload.get("version").and_then(Value::as_u64),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn oversized_fleet_is_rejected_typed() {
        let service = Service::new();
        let h = service.handle(&Request::Fleet(crate::proto::FleetSpec {
            scenario: "idle".into(),
            policy: "ondemand".into(),
            soc: "xu3".into(),
            lanes: MAX_FLEET_LANES + 1,
            secs: 1,
            seed: 42,
        }));
        assert!(matches!(
            h.response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }
}

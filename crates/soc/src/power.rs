//! Power model for one cluster.
//!
//! Per-core power at an OPP `(f, V)` with busy fraction `u ∈ [0, 1]` and
//! temperature `T`:
//!
//! ```text
//! P_core = C_eff · V² · f · u          (switching)
//!        + idle_frac · C_eff · V² · f · (1 − u)   (clock/idle overhead)
//!        + P_leak(V, T)                (static)
//! P_leak(V, T) = k_leak · V · (1 + α_T · (T − T_ref))
//! ```
//!
//! plus a per-cluster uncore term `P_unc = unc_base + unc_ceff · V² · f`.
//! This is the standard first-order CMOS model used throughout the DVFS
//! literature; its key property — energy per cycle grows ~V² with
//! frequency — is what makes "race-to-idle vs just-enough" a real
//! trade-off, which is the dynamic the paper's policy learns.

use crate::Opp;

/// Cluster power model parameters. All powers are watts, capacitances in
/// farads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Effective switched capacitance per core (F).
    pub ceff_f: f64,
    /// Fraction of dynamic power still burned while clocked but idle
    /// (clock tree + stalls), typically 0.1–0.3.
    pub idle_frac: f64,
    /// Leakage coefficient (W per volt at the reference temperature).
    pub leak_w_per_v: f64,
    /// Relative leakage increase per degree above the reference
    /// temperature (1/°C).
    pub leak_temp_coeff: f64,
    /// Reference temperature for the leakage model (°C).
    pub leak_t_ref_c: f64,
    /// Constant uncore power for the cluster (W).
    pub uncore_base_w: f64,
    /// Frequency-dependent uncore capacitance (F).
    pub uncore_ceff_f: f64,
    /// Energy dissipated by one DVFS transition (J) — regulator ramp plus
    /// PLL relock.
    pub transition_energy_j: f64,
}

impl PowerModel {
    /// A model with parameters in the range published for a big
    /// (Cortex-A15-class) mobile cluster.
    pub fn big_cluster() -> Self {
        PowerModel {
            ceff_f: 4.0e-10,
            idle_frac: 0.15,
            leak_w_per_v: 0.04,
            leak_temp_coeff: 0.012,
            leak_t_ref_c: 40.0,
            uncore_base_w: 0.12,
            uncore_ceff_f: 1.2e-10,
            transition_energy_j: 8e-6,
        }
    }

    /// A model for a LITTLE (Cortex-A7-class) cluster.
    pub fn little_cluster() -> Self {
        PowerModel {
            ceff_f: 1.3e-10,
            idle_frac: 0.12,
            leak_w_per_v: 0.02,
            leak_temp_coeff: 0.010,
            leak_t_ref_c: 40.0,
            uncore_base_w: 0.04,
            uncore_ceff_f: 0.3e-10,
            transition_energy_j: 4e-6,
        }
    }

    /// A model for a mid-class symmetric mobile core.
    pub fn symmetric_cluster() -> Self {
        PowerModel {
            ceff_f: 2.5e-10,
            idle_frac: 0.13,
            leak_w_per_v: 0.05,
            leak_temp_coeff: 0.011,
            leak_t_ref_c: 40.0,
            uncore_base_w: 0.08,
            uncore_ceff_f: 0.7e-10,
            transition_energy_j: 6e-6,
        }
    }

    /// Dynamic (switching) power of one fully busy core at `opp`, in watts.
    pub fn dynamic_w(&self, opp: Opp) -> f64 {
        self.ceff_f * opp.voltage_v * opp.voltage_v * opp.freq_hz as f64
    }

    /// Leakage power of one core at `opp` and temperature `temp_c`, in
    /// watts. Clamped at zero so extreme sub-reference temperatures cannot
    /// produce negative power.
    pub fn leakage_w(&self, opp: Opp, temp_c: f64) -> f64 {
        self.leakage_w_from_base(self.leak_w_per_v * opp.voltage_v, temp_c)
    }

    /// Leakage from a precomputed voltage term `leak_base =
    /// leak_w_per_v · V`. The hot path hoists `leak_base` out of the
    /// sub-step loop; routing [`PowerModel::leakage_w`] through here keeps
    /// the two paths bit-identical by construction.
    pub fn leakage_w_from_base(&self, leak_base: f64, temp_c: f64) -> f64 {
        Self::leakage_w_from_parts(leak_base, temp_c, self.leak_temp_coeff, self.leak_t_ref_c)
    }

    /// Leakage with every model parameter passed explicitly, for batched
    /// kernels that hold the parameters in structure-of-arrays lanes.
    /// [`PowerModel::leakage_w_from_base`] routes through here, so the
    /// scalar and batched paths evaluate one shared expression and stay
    /// bit-identical by construction.
    pub fn leakage_w_from_parts(
        leak_base: f64,
        temp_c: f64,
        leak_temp_coeff: f64,
        leak_t_ref_c: f64,
    ) -> f64 {
        let scale = 1.0 + leak_temp_coeff * (temp_c - leak_t_ref_c);
        (leak_base * scale).max(0.0)
    }

    /// Total power of one core with busy fraction `busy` at `opp` and
    /// `temp_c`, in watts.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `busy` is outside `[0, 1]`.
    pub fn core_w(&self, opp: Opp, busy: f64, temp_c: f64) -> f64 {
        self.core_w_scaled(opp, busy, temp_c, 1.0, 1.0)
    }

    /// Core power with cpuidle scale factors applied: `idle_dyn_scale`
    /// multiplies the idle (clock-tree) dynamic term, `leak_scale` the
    /// leakage term. `(1.0, 1.0)` is the active state; see
    /// [`crate::IdleStates::power_scales`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `busy` is outside `[0, 1]`.
    pub fn core_w_scaled(
        &self,
        opp: Opp,
        busy: f64,
        temp_c: f64,
        idle_dyn_scale: f64,
        leak_scale: f64,
    ) -> f64 {
        debug_assert!(
            (0.0..=1.0).contains(&busy),
            "busy fraction {busy} out of range"
        );
        let dyn_w = self.dynamic_w(opp);
        Self::core_w_from_parts(
            dyn_w,
            dyn_w * self.idle_frac,
            self.leakage_w(opp, temp_c),
            busy,
            idle_dyn_scale,
            leak_scale,
        )
    }

    /// Core power from precomputed per-OPP constants: `dyn_w` is the
    /// fully-busy switching power, `idle_coeff = dyn_w · idle_frac`, and
    /// `leak_w` is the already-evaluated leakage at the current
    /// temperature. This is the single source of truth for the per-core
    /// power expression — both the straightforward
    /// [`PowerModel::core_w_scaled`] path and the cluster's memoised
    /// sub-step loop call it, so they cannot drift apart bitwise. The
    /// association order matches the original inline expression exactly.
    #[inline]
    pub fn core_w_from_parts(
        dyn_w: f64,
        idle_coeff: f64,
        leak_w: f64,
        busy: f64,
        idle_dyn_scale: f64,
        leak_scale: f64,
    ) -> f64 {
        dyn_w * busy + idle_coeff * (1.0 - busy) * idle_dyn_scale + leak_w * leak_scale
    }

    /// [`PowerModel::core_w_from_parts`] specialised to a quiescent core
    /// (`busy == 0.0`): `dyn_w · 0.0` is `+0.0` for the finite
    /// non-negative `dyn_w` the model produces, `(1.0 − 0.0)` is `1.0`,
    /// and adding `+0.0` to the non-negative idle term is a bitwise
    /// no-op — so this fold is **bit-identical** to the general
    /// expression (asserted by a unit test) while skipping three
    /// multiplications in the idle fast-forward loop.
    #[inline]
    pub fn idle_core_w_from_parts(
        idle_coeff: f64,
        leak_w: f64,
        idle_dyn_scale: f64,
        leak_scale: f64,
    ) -> f64 {
        idle_coeff * idle_dyn_scale + leak_w * leak_scale
    }

    /// Cluster uncore power at `opp`, in watts.
    pub fn uncore_w(&self, opp: Opp) -> f64 {
        self.uncore_base_w + self.uncore_ceff_f * opp.voltage_v * opp.voltage_v * opp.freq_hz as f64
    }

    /// Total cluster power given per-core busy fractions.
    pub fn cluster_w(&self, opp: Opp, busy: &[f64], temp_c: f64) -> f64 {
        busy.iter()
            .map(|&u| self.core_w(opp, u, temp_c))
            .sum::<f64>()
            + self.uncore_w(opp)
    }

    /// Energy in joules for a cluster over an interval of `dt_s` seconds.
    pub fn cluster_energy_j(&self, opp: Opp, busy: &[f64], temp_c: f64, dt_s: f64) -> f64 {
        self.cluster_w(opp, busy, temp_c) * dt_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn opp_low() -> Opp {
        Opp::new(200_000_000, 0.9)
    }

    fn opp_high() -> Opp {
        Opp::new(2_000_000_000, 1.25)
    }

    #[test]
    fn dynamic_power_scales_superlinearly_with_opp() {
        let m = PowerModel::big_cluster();
        let low = m.dynamic_w(opp_low());
        let high = m.dynamic_w(opp_high());
        // f ratio is 10x, V² ratio ~1.93x → ~19x total.
        assert!(high / low > 15.0, "ratio {}", high / low);
        assert!(high / low < 25.0, "ratio {}", high / low);
    }

    #[test]
    fn busy_core_burns_more_than_idle_core() {
        let m = PowerModel::big_cluster();
        let busy = m.core_w(opp_high(), 1.0, 50.0);
        let idle = m.core_w(opp_high(), 0.0, 50.0);
        assert!(busy > idle);
        assert!(idle > 0.0, "idle core still leaks and clocks");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = PowerModel::big_cluster();
        let cold = m.leakage_w(opp_high(), 40.0);
        let hot = m.leakage_w(opp_high(), 85.0);
        assert!(hot > cold);
        // 45 degrees * 1.2%/degree = 54% more leakage.
        assert!((hot / cold - 1.54).abs() < 0.01, "ratio {}", hot / cold);
    }

    #[test]
    fn leakage_never_negative() {
        let m = PowerModel::big_cluster();
        assert_eq!(m.leakage_w(opp_low(), -200.0), 0.0);
    }

    #[test]
    fn idle_fold_is_bit_identical_to_general_expression() {
        // The idle fast-forward uses the folded busy=0 form; it must
        // match the general expression bit for bit across the model's
        // whole operating envelope, including zero coefficients and the
        // clamped (zero) leakage regime.
        for m in [PowerModel::big_cluster(), PowerModel::little_cluster()] {
            for opp in [opp_low(), opp_high()] {
                for temp in [-200.0, 20.0, 55.5, 84.999, 120.0] {
                    for (ds, ls) in [(1.0, 1.0), (0.3, 1.0), (0.0, 0.05), (0.0, 0.0)] {
                        let dyn_w = m.dynamic_w(opp);
                        let idle_coeff = dyn_w * m.idle_frac;
                        let leak_w = m.leakage_w(opp, temp);
                        let general =
                            PowerModel::core_w_from_parts(dyn_w, idle_coeff, leak_w, 0.0, ds, ls);
                        let folded = PowerModel::idle_core_w_from_parts(idle_coeff, leak_w, ds, ls);
                        assert_eq!(general.to_bits(), folded.to_bits(), "temp {temp}");
                    }
                }
            }
        }
    }

    #[test]
    fn big_cluster_peak_power_is_mobile_scale() {
        // A fully-loaded 4-core big cluster at 2 GHz should land in the
        // published 3–8 W envelope for this class of silicon.
        let m = PowerModel::big_cluster();
        let p = m.cluster_w(opp_high(), &[1.0; 4], 70.0);
        assert!(p > 3.0 && p < 8.0, "peak big-cluster power {p} W");
    }

    #[test]
    fn little_cluster_is_much_cheaper_than_big() {
        let big = PowerModel::big_cluster();
        let little = PowerModel::little_cluster();
        let opp_l = Opp::new(1_400_000_000, 1.1);
        let p_big = big.cluster_w(opp_high(), &[1.0; 4], 60.0);
        let p_little = little.cluster_w(opp_l, &[1.0; 4], 60.0);
        assert!(p_big / p_little > 4.0, "big/little = {}", p_big / p_little);
    }

    #[test]
    fn cluster_power_is_sum_of_cores_plus_uncore() {
        let m = PowerModel::big_cluster();
        let opp = opp_high();
        let busy = [0.5, 1.0, 0.0];
        let direct: f64 =
            busy.iter().map(|&u| m.core_w(opp, u, 55.0)).sum::<f64>() + m.uncore_w(opp);
        assert!((m.cluster_w(opp, &busy, 55.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::little_cluster();
        let opp = opp_low();
        let p = m.cluster_w(opp, &[1.0], 45.0);
        let e = m.cluster_energy_j(opp, &[1.0], 45.0, 0.02);
        assert!((e - p * 0.02).abs() < 1e-15);
    }

    #[test]
    fn just_enough_beats_race_to_idle_over_a_period() {
        // A governor's core trade-off: executing W cycles within a period
        // T costs less at a just-enough OPP than racing at the top OPP and
        // idling, because V² switching dominates and the idle tail still
        // burns clock and leakage power at the high OPP.
        let m = PowerModel::big_cluster();
        let period_s = 0.1;
        let work_cycles = 1e7; // fits at either OPP within the period
        let energy_at = |opp: Opp| -> f64 {
            let busy_s = work_cycles / opp.freq_hz as f64;
            assert!(busy_s <= period_s);
            let busy_frac = busy_s / period_s;
            m.core_w(opp, busy_frac, 50.0) * period_s
        };
        let e_low = energy_at(opp_low());
        let e_high = energy_at(opp_high());
        assert!(
            e_low < 0.7 * e_high,
            "just-enough energy {e_low} should clearly beat race-to-idle {e_high}"
        );
    }

    #[test]
    fn per_work_busy_energy_is_cheaper_at_low_voltage() {
        // Even ignoring idle overhead, energy *per unit of work* while
        // busy is lower at the low-voltage OPP (V² scaling beats the
        // longer leakage exposure with calibrated constants).
        let m = PowerModel::big_cluster();
        let per_work = |opp: Opp| m.core_w(opp, 1.0, 50.0) / opp.freq_hz as f64;
        assert!(per_work(opp_low()) < per_work(opp_high()));
    }

    proptest! {
        #[test]
        fn prop_power_is_monotone_in_busy(
            u1 in 0.0f64..=1.0,
            u2 in 0.0f64..=1.0,
            t in 0.0f64..100.0,
        ) {
            let m = PowerModel::big_cluster();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(m.core_w(opp_high(), lo, t) <= m.core_w(opp_high(), hi, t) + 1e-12);
        }

        #[test]
        fn prop_power_always_positive(u in 0.0f64..=1.0, t in -20.0f64..120.0) {
            for m in [PowerModel::big_cluster(), PowerModel::little_cluster(), PowerModel::symmetric_cluster()] {
                prop_assert!(m.core_w(opp_low(), u, t) > 0.0);
                prop_assert!(m.core_w(opp_high(), u, t) > 0.0);
            }
        }

        #[test]
        fn prop_higher_opp_burns_more_at_same_busy(u in 0.0f64..=1.0, t in 0.0f64..100.0) {
            let m = PowerModel::symmetric_cluster();
            prop_assert!(m.core_w(opp_low(), u, t) < m.core_w(opp_high(), u, t));
        }
    }
}

//! Inspect what a policy does over time: train the RL governor on a
//! scenario, evaluate it frozen with tracing, and print a per-second
//! summary of frequency levels, utilisation, power and QoS — the data
//! behind the paper's behaviour figures.
//!
//! ```text
//! cargo run --release --example policy_trace -- gaming rlpm
//! cargo run --release --example policy_trace -- video schedutil
//! ```

use experiments::{run, PolicyKind, RunConfig, TrainingProtocol};
use governors::GovernorKind;
use soc::{Soc, SocConfig};
use workload::ScenarioKind;

fn parse_scenario(name: &str) -> ScenarioKind {
    ScenarioKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown scenario {name:?}; using gaming");
            ScenarioKind::Gaming
        })
}

fn parse_policy(name: &str) -> PolicyKind {
    match name {
        "rlpm" => PolicyKind::Rl,
        "rlpm-hw" => PolicyKind::RlHw,
        other => GovernorKind::SIX_BASELINES
            .into_iter()
            .find(|k| k.name() == other)
            .map(PolicyKind::Baseline)
            .unwrap_or_else(|| {
                eprintln!("unknown policy {other:?}; using rlpm");
                PolicyKind::Rl
            }),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_kind = parse_scenario(args.first().map(String::as_str).unwrap_or("gaming"));
    let policy_kind = parse_policy(args.get(1).map(String::as_str).unwrap_or("rlpm"));
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    let soc_config = SocConfig::odroid_xu3_like()?;
    eprintln!("building {policy_kind} (training RL variants on {scenario_kind}) ...");
    let mut governor =
        policy_kind.build_trained(&soc_config, scenario_kind, TrainingProtocol::default(), 42);

    let mut soc = Soc::new(soc_config.clone())?;
    let mut scenario = scenario_kind.build(4242);
    let metrics = run(
        &mut soc,
        scenario.as_mut(),
        governor.as_mut(),
        RunConfig::seconds(secs).with_trace(),
    );
    let trace = metrics.trace.as_ref().expect("trace requested");

    println!("sec  lvl_L lvl_b  util_L util_b  power_W  qos_units");
    let l0 = trace.series("level_0");
    let l1 = trace.series("level_1");
    let u0 = trace.series("util_0");
    let u1 = trace.series("util_1");
    let pw = trace.series("power_w");
    let qu = trace.series("qos_units");
    let epochs_per_sec = 50;
    for sec in 0..(secs as usize) {
        let range = sec * epochs_per_sec..((sec + 1) * epochs_per_sec).min(l0.len());
        if range.is_empty() {
            break;
        }
        let mean = |s: &[(f64, f64)]| {
            s[range.clone()].iter().map(|(_, v)| v).sum::<f64>() / range.len() as f64
        };
        println!(
            "{sec:>3}  {:>5.1} {:>5.1}  {:>6.2} {:>6.2}  {:>7.3}  {:>9.2}",
            mean(&l0),
            mean(&l1),
            mean(&u0),
            mean(&u1),
            mean(&pw),
            qu[range.clone()].iter().map(|(_, v)| v).sum::<f64>(),
        );
    }

    println!("\n=== {scenario_kind} / {policy_kind} over {secs}s ===");
    println!("energy          : {:.3} J", metrics.energy_j);
    println!("avg power       : {:.3} W", metrics.avg_power_w);
    println!("energy per QoS  : {:.5} J/unit", metrics.energy_per_qos);
    println!(
        "QoS             : {:.2}% delivered, {} violations, {} on-time / {} jobs",
        metrics.qos.qos_ratio() * 100.0,
        metrics.qos.violations,
        metrics.qos.on_time,
        metrics.qos.completed
    );
    println!("DVFS transitions: {}", metrics.transitions);
    Ok(())
}

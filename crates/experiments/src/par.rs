//! Tiny order-preserving parallel map over OS threads (`std::thread::scope`);
//! experiment matrices are embarrassingly parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `available_parallelism` threads,
/// returning results in input order.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A poisoned slot means another worker panicked while holding
                // the lock, which the hold-free critical sections below make
                // impossible; propagate rather than mask if it ever happens.
                let item = match work[i].lock() {
                    Ok(mut slot) => slot.take(),
                    Err(poisoned) => poisoned.into_inner().take(),
                };
                let Some(item) = item else { continue };
                let out = f(item);
                if let Ok(mut slot) = results[i].lock() {
                    *slot = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let inner = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            match inner {
                Some(v) => v,
                None => unreachable!("parallel_map slot {i} left unprocessed"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }
}

//! Minimal hand-rolled JSON value, parser, and renderer.
//!
//! The build environment is offline, so the server cannot pull in a JSON
//! dependency; this module implements exactly the subset the wire protocol
//! needs. Two deliberate simplifications versus a general-purpose library:
//!
//! * Objects preserve insertion order in a `Vec<(String, Value)>` so rendered
//!   responses are deterministic and diff-friendly in transcripts.
//! * Numbers are stored as `f64`. Integers are exact up to 2^53, far beyond
//!   any seed, lane count, or duration the protocol carries; [`Value::as_u64`]
//!   refuses values with a fractional part or outside that range.
//!
//! Parsing is recursive descent over bytes with a hard depth limit
//! ([`MAX_DEPTH`]) so a hostile deeply-nested line cannot overflow the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts before returning
/// [`ParseError::TooDeep`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see module docs for integer-exactness limits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value (convenience for response construction).
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a number value from an unsigned integer.
    pub fn num_u64(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// Borrows the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as an exact unsigned integer.
    ///
    /// `None` unless this is a number with no fractional part inside
    /// `0..=2^53` (the f64 exact-integer range).
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match wins); `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders this value as compact single-line JSON.
    ///
    /// Whole finite numbers render without a decimal point; non-finite
    /// numbers (which valid JSON cannot carry) render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) if n.is_finite() => {
                // Rust's shortest-roundtrip Display prints whole f64s
                // without a trailing ".0", which is exactly JSON's shape.
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a line failed to parse; carries the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An unexpected byte (or end of input) at the given offset.
    Unexpected(usize),
    /// A malformed number at the given offset.
    BadNumber(usize),
    /// A malformed string escape or raw control byte at the given offset.
    BadString(usize),
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep(usize),
    /// Valid JSON value followed by trailing garbage at the given offset.
    Trailing(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected(at) => write!(f, "unexpected input at byte {at}"),
            ParseError::BadNumber(at) => write!(f, "malformed number at byte {at}"),
            ParseError::BadString(at) => write!(f, "malformed string at byte {at}"),
            ParseError::TooDeep(at) => {
                write!(f, "nesting deeper than {MAX_DEPTH} at byte {at}")
            }
            ParseError::Trailing(at) => write!(f, "trailing data after value at byte {at}"),
        }
    }
}

/// Parses one complete JSON value from `input`.
///
/// The whole input must be consumed (modulo surrounding whitespace);
/// anything left over is a [`ParseError::Trailing`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(ParseError::Trailing(p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, rest: &[u8], value: Value) -> Result<Value, ParseError> {
        for want in rest {
            if self.bump() != Some(*want) {
                return Err(ParseError::Unexpected(self.pos.saturating_sub(1)));
            }
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(ParseError::TooDeep(self.pos));
        }
        match self.peek() {
            Some(b'n') => {
                self.pos += 1;
                self.expect_literal(b"ull", Value::Null)
            }
            Some(b't') => {
                self.pos += 1;
                self.expect_literal(b"rue", Value::Bool(true))
            }
            Some(b'f') => {
                self.pos += 1;
                self.expect_literal(b"alse", Value::Bool(false))
            }
            Some(b'"') => {
                self.pos += 1;
                self.string().map(Value::Str)
            }
            Some(b'[') => {
                self.pos += 1;
                self.array(depth)
            }
            Some(b'{') => {
                self.pos += 1;
                self.object(depth)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(ParseError::Unexpected(self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(ParseError::Unexpected(self.pos));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if !self.eat(b'"') {
                return Err(ParseError::Unexpected(self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(ParseError::Unexpected(self.pos));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(members));
            }
            if !self.eat(b',') {
                return Err(ParseError::Unexpected(self.pos));
            }
        }
    }

    /// Parses the body of a string; the opening quote is already consumed.
    fn string(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.bump() {
                None => return Err(ParseError::BadString(at)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => {
                    let esc_at = self.pos;
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let c = self.unicode_escape(esc_at)?;
                            out.push(c);
                        }
                        _ => return Err(ParseError::BadString(esc_at)),
                    }
                }
                Some(b) if b < 0x20 => return Err(ParseError::BadString(at)),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — re-decode the sequence starting here.
                    let c = self.utf8_tail(first, at)?;
                    out.push(c);
                }
            }
        }
    }

    /// Decodes `\uXXXX`, pairing surrogates into one scalar.
    fn unicode_escape(&mut self, esc_at: usize) -> Result<char, ParseError> {
        let hi = self.hex4(esc_at)?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(ParseError::BadString(esc_at));
            }
            let lo = self.hex4(esc_at)?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(ParseError::BadString(esc_at));
            }
            let scalar = 0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(scalar).ok_or(ParseError::BadString(esc_at))
        } else if (0xDC00..=0xDFFF).contains(&hi) {
            Err(ParseError::BadString(esc_at))
        } else {
            char::from_u32(hi).ok_or(ParseError::BadString(esc_at))
        }
    }

    fn hex4(&mut self, esc_at: usize) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(ParseError::BadString(esc_at)),
            };
            v = (v << 4) | digit;
        }
        Ok(v)
    }

    /// Re-decodes a multi-byte UTF-8 sequence whose first byte was already
    /// consumed. Input came from a `&str`, so this cannot fail in practice;
    /// the error path keeps the function total.
    fn utf8_tail(&mut self, first: u8, at: usize) -> Result<char, ParseError> {
        let extra = match first {
            0xC0..=0xDF => 1,
            0xE0..=0xEF => 2,
            0xF0..=0xF7 => 3,
            _ => return Err(ParseError::BadString(at)),
        };
        let end = self.pos.saturating_add(extra);
        let slice = self
            .bytes
            .get(at..end.min(self.bytes.len()))
            .ok_or(ParseError::BadString(at))?;
        let s = std::str::from_utf8(slice).map_err(|_| ParseError::BadString(at))?;
        let c = s.chars().next().ok_or(ParseError::BadString(at))?;
        self.pos = end;
        Ok(c)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let slice = self
            .bytes
            .get(start..self.pos)
            .ok_or(ParseError::BadNumber(start))?;
        let text = std::str::from_utf8(slice).map_err(|_| ParseError::BadNumber(start))?;
        let n: f64 = text.parse().map_err(|_| ParseError::BadNumber(start))?;
        if !n.is_finite() {
            return Err(ParseError::BadNumber(start));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        match parse(text) {
            Ok(v) => v.render(),
            Err(e) => format!("error: {e}"),
        }
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-3.5"), "-3.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_preserve_order() {
        let text = "{\"b\":1,\"a\":[2,{\"c\":null}],\"d\":\"x\"}";
        assert_eq!(roundtrip(text), text);
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(roundtrip(" { \"k\" : [ 1 , 2 ] } "), "{\"k\":[1,2]}");
    }

    #[test]
    fn string_escapes_decode_and_reencode() {
        assert_eq!(roundtrip("\"a\\u0041\\n\\t\\\\\""), "\"aA\\n\\t\\\\\"");
        // Surrogate pair for U+1F600.
        let parsed = parse("\"\\ud83d\\ude00\"");
        assert_eq!(parsed, Ok(Value::Str("\u{1F600}".to_string())));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(roundtrip("\"caf\u{e9}\""), "\"caf\u{e9}\"");
    }

    #[test]
    fn control_bytes_are_escaped_on_render() {
        let v = Value::str("a\u{01}b");
        assert_eq!(v.render(), "\"a\\u0001b\"");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(parse(""), Err(ParseError::Unexpected(0))));
        assert!(matches!(parse("{"), Err(ParseError::Unexpected(_))));
        assert!(matches!(parse("[1,]"), Err(ParseError::Unexpected(_))));
        assert!(matches!(parse("nul"), Err(ParseError::Unexpected(_))));
        assert!(matches!(parse("\"ab"), Err(ParseError::BadString(_))));
        assert!(matches!(parse("\"\\q\""), Err(ParseError::BadString(_))));
        assert!(matches!(
            parse("\"\\ud83d\""),
            Err(ParseError::BadString(_))
        ));
        assert!(matches!(parse("1 2"), Err(ParseError::Trailing(_))));
        assert!(matches!(parse("{\"a\":1} x"), Err(ParseError::Trailing(_))));
        assert!(matches!(parse("1e999"), Err(ParseError::BadNumber(_))));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(matches!(parse(&deep), Err(ParseError::TooDeep(_))));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integer_exactness_gate() {
        assert_eq!(
            parse("9007199254740992").ok().and_then(|v| v.as_u64()),
            Some(1 << 53)
        );
        assert_eq!(parse("1.5").ok().and_then(|v| v.as_u64()), None);
        assert_eq!(parse("-1").ok().and_then(|v| v.as_u64()), None);
    }

    #[test]
    fn get_walks_objects() {
        let v = match parse("{\"a\":{\"b\":7}}") {
            Ok(v) => v,
            Err(e) => panic!("parse failed: {e}"),
        };
        let inner = v.get("a").and_then(|a| a.get("b")).and_then(Value::as_u64);
        assert_eq!(inner, Some(7));
        assert!(v.get("missing").is_none());
    }
}

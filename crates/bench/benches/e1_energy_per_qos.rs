//! Bench for **E1** — the headline energy-per-QoS table. Criterion times
//! one representative cell of each kind (a baseline-governor run and a
//! trained-RL run); once per invocation it also prints the regenerated
//! quick-matrix table so `cargo bench` output contains the rows.

use criterion::{criterion_group, criterion_main, Criterion};

use experiments::e1_energy_per_qos::{run_e1, E1Config};
use experiments::{run, PolicyKind, RunConfig, TrainingProtocol};
use governors::GovernorKind;
use soc::Soc;
use workload::ScenarioKind;

fn bench_e1(c: &mut Criterion) {
    let soc_config = bench::soc_under_test();

    // Print the regenerated (quick) table once.
    let result = run_e1(&soc_config, &E1Config::quick());
    println!("{}", result.energy_per_qos_table().to_markdown());
    println!("{}", result.summary_table().to_markdown());

    let mut group = c.benchmark_group("e1");
    group.sample_size(10);

    group.bench_function("baseline_cell_video_ondemand_20s", |b| {
        b.iter(|| {
            let mut soc = Soc::new(soc_config.clone()).unwrap();
            let mut scenario = ScenarioKind::Video.build(1);
            let mut governor = GovernorKind::Ondemand.build(&soc_config);
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(20),
            )
        })
    });

    group.bench_function("rl_cell_video_train_quick_eval_20s", |b| {
        b.iter(|| {
            let mut soc = Soc::new(soc_config.clone()).unwrap();
            let mut governor = PolicyKind::Rl.build_trained(
                &soc_config,
                ScenarioKind::Video,
                TrainingProtocol::quick(),
                1,
            );
            let mut scenario = ScenarioKind::Video.build(2);
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(20),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);

//! Cold-vs-warm regeneration benchmark for the content-addressed
//! simulation cache, persisted to `BENCH_regen.json`.
//!
//! One pass runs every *deterministic* quick-size experiment section of
//! `regen-tables` twice against a scratch cache directory: once cold
//! (empty cache — every cell trains and simulates) and once warm (same
//! process, in-memory memo cleared, so every cell is served from disk).
//! E4 is excluded: it measures host decision latency with the host
//! clock and is not cacheable. The warm/cold wall-time ratio is the
//! headline `speedup` number; the acceptance floor for the cache is 5x.
//!
//! The JSON follows the `BENCH_simrate.json` conventions: rigid
//! two-level objects, a pinned `baseline` section preserved verbatim by
//! later runs, and best-of-N fastest-run timing (identical
//! deterministic work per run, so excess over the minimum is host
//! noise).

use std::time::Instant;

use experiments::ablations::{
    a1_state_features, a2_reward_shaping, a3_exploration, a4_algorithm, AblationConfig,
};
use experiments::e1_energy_per_qos::{run_e1, E1Config};
use experiments::e2_learning_curve::{run_e2, E2Config};
use experiments::e3_adaptivity::{run_e3, E3Config};
use experiments::e6_fixed_point::{run_parity, run_sweep};
use experiments::e7_hw_cost::run_e7;
use experiments::e8_idle_states::{run_e8, E8Config};
use experiments::e9_fault_resilience::{run_e9, E9Config};
use soc::SocConfig;

use crate::simrate::{extract_number, extract_object, extract_string, json_num};

/// The deterministic regen sections the benchmark covers (E4 excluded —
/// it measures the host clock and bypasses the cache).
pub const SECTIONS: &str = "e1 e2 e3 e5 e6 e7 e8 e9 e9-fault a1 a2 a3 a4";

/// One measured cold/warm pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Free-form description of the code state that produced the numbers.
    pub label: String,
    /// Fastest cold wall time (empty cache) in seconds.
    pub cold_s: f64,
    /// Fastest warm wall time (disk cache populated, memo cleared) in
    /// seconds.
    pub warm_s: f64,
    /// Cache misses during a cold pass (deterministic).
    pub cold_misses: u64,
    /// Cache hits during a warm pass (deterministic).
    pub warm_hits: u64,
}

impl Measurement {
    /// Warm speedup over cold.
    pub fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s.max(1e-9)
    }
}

/// Runs every deterministic section once at quick sizes, discarding the
/// tables (the benchmark times the simulation/cache work, not CSV IO).
fn run_sections(soc_config: &SocConfig) {
    let _ = run_e1(soc_config, &E1Config::quick()); // also feeds E5
    let _ = run_e2(soc_config, &E2Config::quick());
    let _ = run_e3(soc_config, &E3Config::quick());
    let _ = run_parity(soc_config, 5_000, 6);
    let _ = run_sweep(soc_config, 5_000, 6);
    let _ = run_e7(soc_config);
    let _ = run_e8(&E8Config::quick());
    if let Ok(symmetric) = SocConfig::symmetric_quad() {
        let _ = run_e1(&symmetric, &E1Config::quick());
    }
    let _ = run_e9(soc_config, &E9Config::quick());
    let ablation_config = AblationConfig::quick();
    let _ = a1_state_features(soc_config, &ablation_config);
    let _ = a2_reward_shaping(soc_config, &ablation_config);
    let _ = a3_exploration(soc_config, &ablation_config);
    let _ = a4_algorithm(soc_config, &ablation_config);
}

/// Measures cold and warm regeneration, best of `repeat` passes each,
/// against a scratch cache directory that is removed afterwards. The
/// process-wide cache is left disabled on return.
pub fn measure(soc_config: &SocConfig, label: &str, repeat: u32) -> Measurement {
    let dir = std::env::temp_dir().join(format!("rlpm-regen-bench-{}", std::process::id()));
    experiments::cache::configure(Some(dir.clone()));
    let mut cold_s = f64::INFINITY;
    let mut warm_s = f64::INFINITY;
    let mut cold_misses = 0;
    let mut warm_hits = 0;
    for _ in 0..repeat.max(1) {
        // Cold: empty directory, empty memo — every cell computes.
        let _ = std::fs::remove_dir_all(&dir);
        experiments::cache::clear_memo();
        experiments::cache::reset_stats();
        let start = Instant::now();
        run_sections(soc_config);
        cold_s = cold_s.min(start.elapsed().as_secs_f64().max(1e-9));
        cold_misses = experiments::cache::stats().misses;

        // Warm: the disk entries the cold pass just stored, memo
        // cleared so every hit goes through the envelope decode path.
        experiments::cache::clear_memo();
        experiments::cache::reset_stats();
        let start = Instant::now();
        run_sections(soc_config);
        warm_s = warm_s.min(start.elapsed().as_secs_f64().max(1e-9));
        warm_hits = experiments::cache::stats().hits;
    }
    let _ = std::fs::remove_dir_all(&dir);
    experiments::cache::configure(None);
    experiments::cache::clear_memo();
    experiments::cache::reset_stats();
    Measurement {
        label: label.to_owned(),
        cold_s,
        warm_s,
        cold_misses,
        warm_hits,
    }
}

/// The persisted report: a pinned baseline plus the current numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The pinned reference numbers (recorded with `--baseline`).
    pub baseline: Option<Measurement>,
    /// The most recent numbers.
    pub current: Option<Measurement>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report {
            baseline: None,
            current: None,
        }
    }

    /// Serialises the report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(
            "  \"unit\": \"wall-seconds per deterministic quick regen (cold vs warm cache)\",\n",
        );
        s.push_str(&format!("  \"sections\": \"{SECTIONS}\""));
        for (name, section) in [("baseline", &self.baseline), ("current", &self.current)] {
            if let Some(m) = section {
                s.push_str(",\n");
                s.push_str(&format!("  \"{name}\": {}", json_measurement(m)));
            }
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses a report previously written by [`Report::to_json`];
    /// `None` for corrupt text or a different schema (callers then
    /// start fresh).
    pub fn from_json(text: &str) -> Option<Report> {
        if extract_number(text, "schema")? != 1.0 {
            return None;
        }
        let parse_section = |name: &str| -> Option<Measurement> {
            let block = extract_object(text, name)?;
            Some(Measurement {
                label: extract_string(&block, "label")?,
                cold_s: extract_number(&block, "cold_s")?,
                warm_s: extract_number(&block, "warm_s")?,
                cold_misses: extract_number(&block, "cold_misses")? as u64,
                warm_hits: extract_number(&block, "warm_hits")? as u64,
            })
        };
        Some(Report {
            baseline: parse_section("baseline"),
            current: parse_section("current"),
        })
    }
}

impl Default for Report {
    fn default() -> Self {
        Report::new()
    }
}

fn json_measurement(m: &Measurement) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("    \"label\": \"{}\",\n", m.label));
    s.push_str(&format!("    \"cold_s\": {},\n", json_num(m.cold_s)));
    s.push_str(&format!("    \"warm_s\": {},\n", json_num(m.warm_s)));
    s.push_str(&format!("    \"speedup\": {},\n", json_num(m.speedup())));
    s.push_str(&format!("    \"cold_misses\": {},\n", m.cold_misses));
    s.push_str(&format!("    \"warm_hits\": {}\n", m.warm_hits));
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            baseline: Some(Measurement {
                label: "per-experiment pools, no cache".into(),
                cold_s: 0.56,
                warm_s: 0.56,
                cold_misses: 0,
                warm_hits: 0,
            }),
            current: Some(Measurement {
                label: "shared scheduler + content-addressed cache".into(),
                cold_s: 0.4,
                warm_s: 0.03,
                cold_misses: 70,
                warm_hits: 65,
            }),
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).expect("own output parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn baseline_survives_a_current_rewrite() {
        let mut report = Report::from_json(&sample().to_json()).unwrap();
        let baseline = report.baseline.clone();
        report.current = Some(Measurement {
            label: "newer".into(),
            cold_s: 0.3,
            warm_s: 0.02,
            cold_misses: 70,
            warm_hits: 65,
        });
        let reparsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(reparsed.baseline, baseline);
        assert_eq!(reparsed.current.unwrap().label, "newer");
    }

    #[test]
    fn corrupt_text_is_rejected() {
        assert!(Report::from_json("not json").is_none());
        assert!(Report::from_json("{\"schema\": 2}").is_none());
    }

    #[test]
    fn measure_smoke_hits_the_cache_when_warm() {
        let m = measure(&crate::soc_under_test(), "test", 1);
        assert!(m.cold_s > 0.0 && m.warm_s > 0.0);
        assert!(m.cold_misses > 0, "cold pass must compute cells");
        // Warm requests are fewer than cold misses (a cached cell skips
        // its inner policy-training lookups entirely), but every one of
        // them must be served from disk.
        assert!(m.warm_hits > 0, "warm pass must hit the cache");
        // The process-wide cache is left disabled for other tests.
        assert!(!experiments::cache::is_enabled());
    }
}

//! CPU idle states (C-states).
//!
//! DVFS governs the *active* power of a mobile CPU; its companion is
//! cpuidle: a core whose run queue stays empty progressively enters
//! deeper idle states — clock gating (WFI) first, then power collapse —
//! trading residency thresholds and wake-up latency for static-power
//! savings. The model is deliberately two-level, matching the
//! C1/C2-style tables mobile SoCs ship:
//!
//! | state | entered after | saves | wake-up cost |
//! |---|---|---|---|
//! | clock gate | `gate_after` idle | most idle *dynamic* power | `gate_wake_latency` |
//! | power collapse | `collapse_after` idle | idle dynamic *and* most leakage | `collapse_wake_latency` |
//!
//! Idle states are **opt-in per cluster** ([`crate::ClusterConfig::idle`]
//! is `None` in the calibrated presets) so that enabling them is an
//! explicit, measurable experiment (E8) rather than a silent change to
//! every result.

use simkit::SimDuration;

/// Two-level cpuidle configuration for one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleStates {
    /// Idle residency after which the core clock-gates.
    pub gate_after: SimDuration,
    /// Idle residency after which the core power-collapses.
    pub collapse_after: SimDuration,
    /// Fraction of the idle *dynamic* power removed while gated, `[0, 1]`.
    pub gate_dynamic_saving: f64,
    /// Fraction of core *leakage* removed while collapsed, `[0, 1]`
    /// (collapse also keeps the gate's dynamic saving).
    pub collapse_leakage_saving: f64,
    /// Stall charged to the first job after waking from the gate.
    pub gate_wake_latency: SimDuration,
    /// Stall charged to the first job after waking from collapse.
    pub collapse_wake_latency: SimDuration,
}

/// The idle state a core is in, given its idle residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleDepth {
    /// Running or recently idle: full idle power.
    Active,
    /// Clock-gated (WFI-class).
    ClockGated,
    /// Power-collapsed.
    Collapsed,
}

impl IdleStates {
    /// A table representative of mobile cpuidle drivers: gate after 1 ms
    /// (50 µs wake), collapse after 10 ms (150 µs wake).
    pub fn mobile_cpuidle() -> Self {
        IdleStates {
            gate_after: SimDuration::from_millis(1),
            collapse_after: SimDuration::from_millis(10),
            gate_dynamic_saving: 0.90,
            collapse_leakage_saving: 0.95,
            gate_wake_latency: SimDuration::from_micros(50),
            collapse_wake_latency: SimDuration::from_micros(150),
        }
    }

    /// Validates the table.
    ///
    /// # Panics
    ///
    /// Panics on inverted thresholds, savings outside `[0, 1]`, or wake
    /// latencies that are not shorter than the residency thresholds.
    pub fn validate(&self) {
        assert!(
            self.gate_after < self.collapse_after,
            "collapse must be the deeper (later) state"
        );
        assert!(
            (0.0..=1.0).contains(&self.gate_dynamic_saving)
                && (0.0..=1.0).contains(&self.collapse_leakage_saving),
            "savings are fractions in [0, 1]"
        );
        assert!(
            self.gate_wake_latency < self.gate_after
                && self.collapse_wake_latency < self.collapse_after,
            "wake-up must cost less than the residency that justified entry"
        );
    }

    /// The state a core with `idle_for` of idle residency is in.
    pub fn depth(&self, idle_for: SimDuration) -> IdleDepth {
        if idle_for >= self.collapse_after {
            IdleDepth::Collapsed
        } else if idle_for >= self.gate_after {
            IdleDepth::ClockGated
        } else {
            IdleDepth::Active
        }
    }

    /// Power scale factors `(idle_dynamic_scale, leakage_scale)` for a
    /// core at `depth`.
    pub fn power_scales(&self, depth: IdleDepth) -> (f64, f64) {
        match depth {
            IdleDepth::Active => (1.0, 1.0),
            IdleDepth::ClockGated => (1.0 - self.gate_dynamic_saving, 1.0),
            IdleDepth::Collapsed => (
                1.0 - self.gate_dynamic_saving,
                1.0 - self.collapse_leakage_saving,
            ),
        }
    }

    /// The wake-up stall for leaving `depth`.
    pub fn wake_latency(&self, depth: IdleDepth) -> SimDuration {
        match depth {
            IdleDepth::Active => SimDuration::ZERO,
            IdleDepth::ClockGated => self.gate_wake_latency,
            IdleDepth::Collapsed => self.collapse_wake_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_table_validates() {
        IdleStates::mobile_cpuidle().validate();
    }

    #[test]
    fn depth_progression() {
        let c = IdleStates::mobile_cpuidle();
        assert_eq!(c.depth(SimDuration::ZERO), IdleDepth::Active);
        assert_eq!(c.depth(SimDuration::from_micros(999)), IdleDepth::Active);
        assert_eq!(c.depth(SimDuration::from_millis(1)), IdleDepth::ClockGated);
        assert_eq!(c.depth(SimDuration::from_millis(9)), IdleDepth::ClockGated);
        assert_eq!(c.depth(SimDuration::from_millis(10)), IdleDepth::Collapsed);
    }

    #[test]
    fn deeper_states_save_more() {
        let c = IdleStates::mobile_cpuidle();
        let (dyn_a, leak_a) = c.power_scales(IdleDepth::Active);
        let (dyn_g, leak_g) = c.power_scales(IdleDepth::ClockGated);
        let (dyn_c, leak_c) = c.power_scales(IdleDepth::Collapsed);
        assert!(dyn_g < dyn_a && leak_g == leak_a);
        assert!(dyn_c <= dyn_g && leak_c < leak_g);
    }

    #[test]
    fn deeper_states_cost_more_to_leave() {
        let c = IdleStates::mobile_cpuidle();
        assert!(c.wake_latency(IdleDepth::Active) < c.wake_latency(IdleDepth::ClockGated));
        assert!(c.wake_latency(IdleDepth::ClockGated) < c.wake_latency(IdleDepth::Collapsed));
    }

    #[test]
    #[should_panic(expected = "deeper")]
    fn inverted_thresholds_rejected() {
        let mut c = IdleStates::mobile_cpuidle();
        c.collapse_after = SimDuration::from_micros(500);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "wake-up")]
    fn pointless_wake_latency_rejected() {
        let mut c = IdleStates::mobile_cpuidle();
        c.gate_wake_latency = SimDuration::from_millis(2);
        c.validate();
    }
}

//! **E4 — software vs hardware decision latency** (LBR: "reduced the
//! average latency up to 40×"; journal: "3.92 times faster").
//!
//! Two views:
//!
//! * the **ladder table**: software decision latency at every LITTLE-core
//!   OPP versus the engine's compute-only and end-to-end latency, with
//!   speedup columns — the compute-only speedup at the lowest OPP is the
//!   "up to" figure;
//! * the **closed-loop distribution**: mean/p99 latency of the software
//!   policy sampled at the frequencies a real run actually visits,
//!   versus the measured end-to-end latency of the [`HwPolicyDriver`] on
//!   the same trace — the average figure.

use rlpm::RlConfig;
use rlpm_hw::{
    AxiLiteBus, DriverMode, HwConfig, HwLatencyModel, HwPolicyDriver, PolicyEngine, PolicyMmio,
    SwLatencyModel,
};
use simkit::stats::{Histogram, Running};
use soc::{Soc, SocConfig};
use workload::ScenarioKind;

use crate::table::{fmt_f64, Table};
use crate::{run, RunConfig};

/// One row of the OPP ladder comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRow {
    /// LITTLE-core frequency the software policy runs at (Hz).
    pub sw_freq_hz: u64,
    /// Software decision latency (µs).
    pub sw_us: f64,
    /// Hardware compute-only latency (µs).
    pub hw_compute_us: f64,
    /// Hardware end-to-end latency including the bus (µs).
    pub hw_e2e_us: f64,
    /// `sw / hw_compute`.
    pub speedup_compute: f64,
    /// `sw / hw_e2e`.
    pub speedup_e2e: f64,
}

/// The ladder + headline speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Ladder {
    /// Per-OPP rows, ascending frequency.
    pub rows: Vec<LadderRow>,
    /// Maximum compute-only speedup (the "up to N×" figure).
    pub max_speedup: f64,
    /// Mean end-to-end speedup across the ladder.
    pub avg_speedup: f64,
}

/// Builds the OPP-ladder comparison for a SoC.
pub fn ladder(soc_config: &SocConfig) -> E4Ladder {
    let rl = RlConfig::for_soc(soc_config);
    let engine = PolicyEngine::new(HwConfig::default(), &rl);
    let bus = AxiLiteBus::new(PolicyMmio::new(engine.clone()));
    let hw = HwLatencyModel::new(&engine, &bus);
    let sw = SwLatencyModel::little_core(rl.num_actions());

    // The software governor runs on the first (LITTLE/efficiency)
    // cluster.
    let opps = &soc_config.clusters[0].opps;
    let rows: Vec<LadderRow> = opps
        .points()
        .iter()
        .map(|opp| {
            let sw_us = sw.decision_latency(opp.freq_hz).as_secs_f64() * 1e6;
            let hw_compute_us = hw.decision_compute().as_secs_f64() * 1e6;
            let hw_e2e_us = hw.decision_end_to_end().as_secs_f64() * 1e6;
            LadderRow {
                sw_freq_hz: opp.freq_hz,
                sw_us,
                hw_compute_us,
                hw_e2e_us,
                speedup_compute: sw_us / hw_compute_us,
                speedup_e2e: sw_us / hw_e2e_us,
            }
        })
        .collect();
    let max_speedup = rows.iter().map(|r| r.speedup_compute).fold(0.0, f64::max);
    let avg_speedup = rows.iter().map(|r| r.speedup_e2e).sum::<f64>() / rows.len() as f64;
    E4Ladder {
        rows,
        max_speedup,
        avg_speedup,
    }
}

/// Renders the ladder as a table.
pub fn ladder_table(l: &E4Ladder) -> Table {
    let mut table = Table::new(
        "E4: decision latency, software (per OPP) vs hardware engine",
        [
            "sw freq (MHz)",
            "sw (us)",
            "hw compute (us)",
            "hw end-to-end (us)",
            "speedup (compute)",
            "speedup (e2e)",
        ],
    );
    for r in &l.rows {
        table.push([
            format!("{:.0}", r.sw_freq_hz as f64 / 1e6),
            fmt_f64(r.sw_us),
            fmt_f64(r.hw_compute_us),
            fmt_f64(r.hw_e2e_us),
            fmt_f64(r.speedup_compute),
            fmt_f64(r.speedup_e2e),
        ]);
    }
    table.push([
        "(max / avg)".to_owned(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_f64(l.max_speedup),
        fmt_f64(l.avg_speedup),
    ]);
    table
}

/// Closed-loop latency distribution comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Distribution {
    /// Software mean latency (µs) at the frequencies the run visited.
    pub sw_mean_us: f64,
    /// Software p99 (µs).
    pub sw_p99_us: f64,
    /// Hardware driver mean end-to-end latency (µs), measured over the
    /// bus model (polling mode).
    pub hw_mean_us: f64,
    /// Hardware driver mean latency in interrupt mode (µs).
    pub hw_irq_mean_us: f64,
    /// Mean speedup (sw mean / hw polling mean).
    pub speedup: f64,
    /// Decisions sampled.
    pub decisions: u64,
}

/// Runs the hardware driver closed-loop on the mixed scenario (training
/// on-line in the engine, as deployed) and samples the software model at
/// the LITTLE frequencies the very same run visits.
pub fn distribution(soc_config: &SocConfig, secs: u64, seed: u64) -> E4Distribution {
    let rl = RlConfig::for_soc(soc_config);
    let sw = SwLatencyModel::little_core(rl.num_actions());

    let mut driver = HwPolicyDriver::new(HwConfig::default(), &rl);
    let mut soc = Soc::new(soc_config.clone()).expect("validated config");
    let mut scenario = ScenarioKind::Mixed.build(seed);
    let metrics = run(
        &mut soc,
        scenario.as_mut(),
        &mut driver,
        RunConfig::seconds(secs).with_trace(),
    );
    let trace = metrics.trace.expect("trace requested");

    // Same run in interrupt mode (typical mobile IRQ path ~0.5 µs).
    let mut irq_driver = HwPolicyDriver::new(HwConfig::default(), &rl);
    irq_driver.set_mode(DriverMode::Interrupt {
        irq_latency: simkit::SimDuration::from_nanos(500),
    });
    let mut soc = Soc::new(soc_config.clone()).expect("validated config");
    let mut scenario = ScenarioKind::Mixed.build(seed);
    run(
        &mut soc,
        scenario.as_mut(),
        &mut irq_driver,
        RunConfig::seconds(secs),
    );

    // Software latency at each epoch's LITTLE frequency.
    let opps = &soc_config.clusters[0].opps;
    let mut sw_stats = Running::new();
    let mut sw_hist = Histogram::new(0.0, 50.0, 1_000); // µs
    for (_, level) in trace.series("level_0") {
        let freq = opps.opp(level as usize).freq_hz;
        let us = sw.decision_latency(freq).as_secs_f64() * 1e6;
        sw_stats.add(us);
        sw_hist.add(us);
    }

    let hw_mean_us = driver.latency_stats().mean() * 1e6;
    E4Distribution {
        sw_mean_us: sw_stats.mean(),
        sw_p99_us: sw_hist.percentile(99.0),
        hw_mean_us,
        hw_irq_mean_us: irq_driver.latency_stats().mean() * 1e6,
        speedup: sw_stats.mean() / hw_mean_us,
        decisions: driver.latency_stats().count(),
    }
}

/// Renders the distribution comparison as a table.
pub fn distribution_table(d: &E4Distribution) -> Table {
    let mut table = Table::new(
        "E4: closed-loop decision latency distribution (mixed scenario)",
        ["metric", "software", "hardware (e2e)"],
    );
    table.push([
        "mean (us)".to_owned(),
        fmt_f64(d.sw_mean_us),
        fmt_f64(d.hw_mean_us),
    ]);
    table.push([
        "mean, irq mode (us)".to_owned(),
        "-".into(),
        fmt_f64(d.hw_irq_mean_us),
    ]);
    table.push(["p99 (us)".to_owned(), fmt_f64(d.sw_p99_us), "-".into()]);
    table.push([
        "mean speedup".to_owned(),
        "-".into(),
        format!("{:.2}x", d.speedup),
    ]);
    table.push([
        "decisions".to_owned(),
        d.decisions.to_string(),
        d.decisions.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_reproduces_the_speedup_shape() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let l = ladder(&soc_config);
        assert_eq!(l.rows.len(), 13, "one row per LITTLE OPP");
        // Software latency decreases with frequency; hardware is flat.
        assert!(l.rows.windows(2).all(|w| w[1].sw_us <= w[0].sw_us + 1e-12));
        assert!(l.rows.windows(2).all(|w| w[0].hw_e2e_us == w[1].hw_e2e_us));
        // Headline shapes: "up to ~40x" compute-only, single-digit e2e
        // average.
        assert!(
            l.max_speedup > 25.0 && l.max_speedup < 60.0,
            "max {}",
            l.max_speedup
        );
        assert!(
            l.avg_speedup > 2.0 && l.avg_speedup < 8.0,
            "avg {}",
            l.avg_speedup
        );
        assert_eq!(ladder_table(&l).len(), 14);
    }

    #[test]
    fn closed_loop_distribution_shows_hardware_ahead() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let d = distribution(&soc_config, 20, 3);
        assert_eq!(d.decisions, 1_000, "one decision per 20 ms epoch for 20 s");
        assert!(
            d.sw_mean_us > d.hw_mean_us,
            "sw {} vs hw {}",
            d.sw_mean_us,
            d.hw_mean_us
        );
        assert!(d.sw_p99_us >= d.sw_mean_us);
        assert!(d.speedup > 1.5, "speedup {}", d.speedup);
        assert!(d.hw_irq_mean_us > 0.0);
        assert_eq!(distribution_table(&d).len(), 5);
    }
}

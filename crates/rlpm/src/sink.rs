//! Decision-trace sink: per-epoch records of what the policy chose and
//! why, streamed to CSV or JSONL.
//!
//! Attached to an [`crate::RlGovernor`] via
//! [`crate::RlGovernor::set_decision_sink`], the sink observes each
//! `decide` call — state index, explore/greedy flag, chosen action,
//! epoch reward, TD correction — without feeding anything back, so an
//! instrumented run stays bit-identical to a bare one. Only compiled
//! with the `obs` feature.

use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::{Action, StateIndex};

/// Output encoding for the decision trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One header line, then one comma-separated row per decision.
    Csv,
    /// One self-describing JSON object per line.
    Jsonl,
}

/// One per-epoch decision, as observed at the governor boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// 1-based decision index within the governor's lifetime.
    pub epoch: u64,
    /// Encoded state the policy acted in.
    pub state: StateIndex,
    /// Whether the ε-greedy selector explored (`true`) or acted
    /// greedily (`false`).
    pub explored: bool,
    /// The chosen action index.
    pub action: Action,
    /// Reward closing the previous transition (`None` on the first
    /// decision of an episode, when there is no transition to close).
    pub reward: Option<f64>,
    /// TD correction applied this epoch (`None` when no update happened,
    /// e.g. first decision or frozen evaluation).
    pub q_delta: Option<f64>,
}

struct Inner {
    writer: Box<dyn Write + Send>,
    format: TraceFormat,
    header_pending: bool,
    records: u64,
    error: Option<io::Error>,
}

/// A cloneable, thread-safe handle streaming [`DecisionRecord`]s to a
/// writer.
///
/// Clones share one underlying writer. The first I/O failure is latched
/// and subsequent records are dropped; [`DecisionSink::finish`] surfaces
/// the latched error so callers never truncate a trace silently.
#[derive(Clone)]
pub struct DecisionSink {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for DecisionSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("DecisionSink");
        if let Ok(inner) = self.inner.lock() {
            d.field("format", &inner.format)
                .field("records", &inner.records)
                .field("errored", &inner.error.is_some());
        }
        d.finish_non_exhaustive()
    }
}

/// Renders an optional float for a CSV cell (empty when absent).
fn csv_opt(v: Option<f64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

/// Renders an optional float for a JSON field (`null` when absent).
fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

impl DecisionSink {
    /// Wraps a writer. Nothing is written until the first record.
    pub fn new<W: Write + Send + 'static>(writer: W, format: TraceFormat) -> Self {
        DecisionSink {
            inner: Arc::new(Mutex::new(Inner {
                writer: Box::new(writer),
                format,
                header_pending: format == TraceFormat::Csv,
                records: 0,
                error: None,
            })),
        }
    }

    /// Appends one record. Drops the record (latching the error) if a
    /// previous write failed; recording never panics or blocks the
    /// simulation on I/O problems.
    pub fn record(&self, rec: &DecisionRecord) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        if inner.error.is_some() {
            return;
        }
        if inner.header_pending {
            inner.header_pending = false;
            if let Err(e) = inner
                .writer
                .write_all(b"epoch,state,explored,action,reward,q_delta\n")
            {
                inner.error = Some(e);
                return;
            }
        }
        let line = match inner.format {
            TraceFormat::Csv => format!(
                "{},{},{},{},{},{}\n",
                rec.epoch,
                rec.state,
                rec.explored,
                rec.action,
                csv_opt(rec.reward),
                csv_opt(rec.q_delta),
            ),
            TraceFormat::Jsonl => format!(
                "{{\"epoch\":{},\"state\":{},\"explored\":{},\"action\":{},\"reward\":{},\"q_delta\":{}}}\n",
                rec.epoch,
                rec.state,
                rec.explored,
                rec.action,
                json_opt(rec.reward),
                json_opt(rec.q_delta),
            ),
        };
        match inner.writer.write_all(line.as_bytes()) {
            Ok(()) => inner.records += 1,
            Err(e) => inner.error = Some(e),
        }
    }

    /// Number of records successfully written so far.
    pub fn records(&self) -> u64 {
        self.inner.lock().map(|inner| inner.records).unwrap_or(0)
    }

    /// Flushes the writer and returns the record count, or the first
    /// latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the error that interrupted the trace (recording stops at
    /// the first failure), or any error from the final flush.
    pub fn finish(&self) -> io::Result<u64> {
        let Ok(mut inner) = self.inner.lock() else {
            return Ok(0);
        };
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        inner.writer.flush()?;
        Ok(inner.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Vec-backed writer that can be inspected after the sink is done.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn rec(epoch: u64) -> DecisionRecord {
        DecisionRecord {
            epoch,
            state: 17,
            explored: epoch.is_multiple_of(2),
            action: 3,
            reward: (epoch > 1).then_some(-0.25),
            q_delta: (epoch > 1).then_some(0.125),
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let buf = SharedBuf::default();
        let sink = DecisionSink::new(buf.clone(), TraceFormat::Csv);
        sink.record(&rec(1));
        sink.record(&rec(2));
        assert_eq!(sink.finish().unwrap(), 2);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "epoch,state,explored,action,reward,q_delta");
        assert_eq!(lines[1], "1,17,false,3,,");
        assert_eq!(lines[2], "2,17,true,3,-0.25,0.125");
    }

    #[test]
    fn jsonl_rows_are_self_describing() {
        let buf = SharedBuf::default();
        let sink = DecisionSink::new(buf.clone(), TraceFormat::Jsonl);
        sink.record(&rec(1));
        sink.record(&rec(2));
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"epoch\":1,\"state\":17,\"explored\":false,\"action\":3,\"reward\":null,\"q_delta\":null}"
        );
        assert!(lines[1].contains("\"reward\":-0.25"));
    }

    #[test]
    fn clones_share_the_writer_and_count() {
        let buf = SharedBuf::default();
        let sink = DecisionSink::new(buf.clone(), TraceFormat::Csv);
        let clone = sink.clone();
        sink.record(&rec(1));
        clone.record(&rec(2));
        assert_eq!(sink.records(), 2);
        assert_eq!(buf.contents().lines().count(), 3);
    }

    #[test]
    fn first_io_error_is_latched_and_reported() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = DecisionSink::new(FailingWriter, TraceFormat::Csv);
        sink.record(&rec(1));
        sink.record(&rec(2)); // dropped, does not panic
        assert_eq!(sink.records(), 0);
        let err = sink.finish().expect_err("error surfaces in finish");
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn debug_does_not_leak_writer_internals() {
        let sink = DecisionSink::new(Vec::new(), TraceFormat::Jsonl);
        let dbg = format!("{sink:?}");
        assert!(dbg.contains("DecisionSink"));
        assert!(dbg.contains("Jsonl"));
    }
}

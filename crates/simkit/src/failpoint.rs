//! Deterministic failpoints: seeded per-site error/panic/delay/abort
//! injection for exercising the *harness's own* failure handling.
//!
//! [`crate::faults`] injects faults into the simulated device; this
//! module injects faults into the machinery that runs simulations — the
//! work-stealing scheduler, the on-disk result cache — so the retry,
//! quarantine and resume paths can be driven deterministically in tests
//! and CI without mocking the filesystem or killing processes by hand.
//!
//! The same discipline applies as in `faults`: an absent or empty plan
//! is a no-op (one relaxed atomic load per consultation), and a firing
//! decision is a **pure function** of `(plan seed, site name, caller
//! key)` — no sequential RNG stream — so the set of fired sites is
//! bit-identical no matter how many worker threads interleave or in
//! which order jobs are claimed. Two runs with the same plan quarantine
//! exactly the same cells.
//!
//! Sites are consulted by name. The ones wired today:
//!
//! * [`SITE_SCHED_JOB`] — before each scheduler job attempt, keyed by
//!   the job's batch index.
//! * [`SITE_CACHE_STORE`] — before each on-disk cache store, keyed by
//!   the entry's content key.
//! * [`SITE_CACHE_LOAD`] — before each on-disk cache load, keyed by the
//!   entry's content key.
//!
//! Plans are installed programmatically with [`configure`] or parsed
//! from the `RLPM_FAILPOINTS` environment variable (see
//! [`plan_from_env`]) with a spec like:
//!
//! ```text
//! seed=7,sched/job=0.25:panic,cache/store=1:error,sched/job=@5:abort
//! ```
//!
//! `site=RATE:action` fires with probability `RATE` per key;
//! `site=@KEY:action` fires exactly on that key. Actions are `error`,
//! `panic`, `abort` and `delay:MS`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Scheduler job site: consulted once per job attempt, keyed by the
/// job's index within its batch.
pub const SITE_SCHED_JOB: &str = "sched/job";
/// On-disk cache store site, keyed by the entry's content key.
pub const SITE_CACHE_STORE: &str = "cache/store";
/// On-disk cache load site, keyed by the entry's content key.
pub const SITE_CACHE_LOAD: &str = "cache/load";

/// Exit code used by [`FailpointAction::Abort`]: distinctive enough
/// that a kill-resume test can tell an injected abort from a real
/// failure.
pub const ABORT_EXIT_CODE: i32 = 86;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailpointAction {
    /// The caller simulates a typed failure on its fallible path (the
    /// scheduler treats it like a caught job panic; the cache treats it
    /// like an I/O error).
    Error,
    /// The caller raises a panic carrying the site name and key.
    Panic,
    /// The caller sleeps this many milliseconds, then proceeds
    /// normally — for exercising timeout/backoff paths.
    Delay(u64),
    /// The process exits immediately with [`ABORT_EXIT_CODE`],
    /// simulating a mid-sweep kill for crash-safety tests.
    Abort,
}

impl fmt::Display for FailpointAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailpointAction::Error => write!(f, "error"),
            FailpointAction::Panic => write!(f, "panic"),
            FailpointAction::Delay(ms) => write!(f, "delay:{ms}"),
            FailpointAction::Abort => write!(f, "abort"),
        }
    }
}

/// When a [`FailpointRule`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailpointTrigger {
    /// Fire when the seeded `(site, key)` hash lands below this
    /// probability. `0.0` never fires and never perturbs anything.
    Rate(f64),
    /// Fire exactly when the caller's key equals this value.
    Key(u64),
}

/// One `site → action` rule of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FailpointRule {
    /// The consultation site, e.g. [`SITE_SCHED_JOB`].
    pub site: String,
    /// When the rule fires.
    pub trigger: FailpointTrigger,
    /// What happens when it does.
    pub action: FailpointAction,
}

/// A full failpoint plan: a seed plus an ordered rule list (first
/// matching rule per site wins).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailpointPlan {
    /// Mixed into every rate decision; two plans with different seeds
    /// fire on different key sets.
    pub seed: u64,
    /// The site rules.
    pub rules: Vec<FailpointRule>,
}

/// A malformed failpoint spec (entry and reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointParseError {
    /// The offending spec entry.
    pub entry: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FailpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint spec {:?}: {}", self.entry, self.reason)
    }
}

impl std::error::Error for FailpointParseError {}

impl FailpointPlan {
    /// Parses a comma-separated spec: `seed=N` entries set the seed,
    /// `site=TRIGGER:action` entries append rules, where `TRIGGER` is a
    /// probability in `[0, 1]` or `@KEY` for an exact key match, and
    /// `action` is `error`, `panic`, `abort` or `delay:MS`.
    ///
    /// # Errors
    ///
    /// Returns [`FailpointParseError`] naming the first malformed entry.
    pub fn parse(spec: &str) -> Result<FailpointPlan, FailpointParseError> {
        let mut plan = FailpointPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let bad = |reason: &str| FailpointParseError {
                entry: entry.to_owned(),
                reason: reason.to_owned(),
            };
            let Some((lhs, rhs)) = entry.split_once('=') else {
                return Err(bad("expected `seed=N` or `site=TRIGGER:action`"));
            };
            if lhs == "seed" {
                plan.seed = rhs.parse().map_err(|_| bad("seed must be a u64"))?;
                continue;
            }
            let Some((trigger_s, action_s)) = rhs.split_once(':') else {
                return Err(bad("expected `TRIGGER:action` after `=`"));
            };
            let trigger = match trigger_s.strip_prefix('@') {
                Some(key) => {
                    FailpointTrigger::Key(key.parse().map_err(|_| bad("`@KEY` must be a u64"))?)
                }
                None => {
                    let rate: f64 = trigger_s
                        .parse()
                        .map_err(|_| bad("rate must be a float in [0, 1]"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(bad("rate must be a float in [0, 1]"));
                    }
                    FailpointTrigger::Rate(rate)
                }
            };
            let action = match action_s.split_once(':') {
                Some(("delay", ms)) => {
                    FailpointAction::Delay(ms.parse().map_err(|_| bad("`delay:MS` must be a u64"))?)
                }
                None if action_s == "error" => FailpointAction::Error,
                None if action_s == "panic" => FailpointAction::Panic,
                None if action_s == "abort" => FailpointAction::Abort,
                _ => return Err(bad("action must be error | panic | abort | delay:MS")),
            };
            plan.rules.push(FailpointRule {
                site: lhs.to_owned(),
                trigger,
                action,
            });
        }
        Ok(plan)
    }

    /// Whether a consultation at `(site, key)` fires, and with what
    /// action. Pure: depends only on the plan and the arguments, never
    /// on call order or thread interleaving.
    pub fn decide(&self, site: &str, key: u64) -> Option<FailpointAction> {
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            let fired = match rule.trigger {
                FailpointTrigger::Key(k) => key == k,
                FailpointTrigger::Rate(rate) => {
                    rate > 0.0 && unit_hash(self.seed, site, key) < rate
                }
            };
            if fired {
                return Some(rule.action);
            }
        }
        None
    }
}

/// Fast-path latch: `true` iff a non-empty plan is installed. Checked
/// before touching the plan mutex so unconfigured consultations cost
/// one atomic load.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The installed plan.
static PLAN: Mutex<Option<FailpointPlan>> = Mutex::new(None);

/// Installs (or, with `None`, clears) the process-wide failpoint plan.
pub fn configure(plan: Option<FailpointPlan>) {
    let armed = plan.as_ref().is_some_and(|p| !p.rules.is_empty());
    match PLAN.lock() {
        Ok(mut guard) => *guard = plan,
        Err(poisoned) => *poisoned.into_inner() = plan,
    }
    // xtask-atomics: fast-path hint only; the PLAN mutex orders the installed plan behind it
    ARMED.store(armed, Ordering::Relaxed);
}

/// Builds a plan from the `RLPM_FAILPOINTS` environment variable.
/// Unset or blank means no plan (`Ok(None)`).
///
/// # Errors
///
/// Returns [`FailpointParseError`] when the variable is set but
/// malformed — callers should surface this rather than silently running
/// without injection.
pub fn plan_from_env() -> Result<Option<FailpointPlan>, FailpointParseError> {
    match std::env::var("RLPM_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => FailpointPlan::parse(&spec).map(Some),
        _ => Ok(None),
    }
}

/// Consults `site` with `key` against the installed plan. `None` (the
/// overwhelmingly common case) means proceed normally.
pub fn check(site: &str, key: u64) -> Option<FailpointAction> {
    // xtask-atomics: fast-path hint only; a stale read just consults the PLAN mutex, which orders the plan
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let guard = match PLAN.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.as_ref().and_then(|plan| plan.decide(site, key))
}

/// Consults `site` and applies the fired action in place: sleeps on
/// [`FailpointAction::Delay`], exits the process on
/// [`FailpointAction::Abort`], and panics on `Panic`/`Error` (callers
/// with a typed error channel should use [`check`] instead and map
/// `Error` onto it). The scheduler calls this inside its per-job
/// supervisor, which catches the panic, retries and quarantines.
pub fn fire(site: &str, key: u64) {
    match check(site, key) {
        None => {}
        Some(FailpointAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FailpointAction::Abort) => std::process::exit(ABORT_EXIT_CODE),
        Some(FailpointAction::Panic) | Some(FailpointAction::Error) => {
            // xtask-allow: no-panic-lib -- deliberate injected failure: fires only under an explicitly armed plan and is caught by the scheduler's per-job supervisor
            panic!("failpoint fired: {site}[{key}]");
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `(seed, site, key)` to `[0, 1)`: FNV-1a over the site name,
/// folded with the seed and key through two SplitMix64 rounds, top 53
/// bits scaled. Stateless, so firing decisions are order-independent.
fn unit_hash(seed: u64, site: &str, key: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in site.bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }
    let mixed = splitmix64(splitmix64(seed ^ h).wrapping_add(key));
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_of_every_form() {
        let plan =
            FailpointPlan::parse("seed=7, sched/job=0.25:panic ,cache/store=@3:error,x=1:delay:20")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules.first().map(|r| (r.trigger, r.action)),
            Some((FailpointTrigger::Rate(0.25), FailpointAction::Panic))
        );
        assert_eq!(
            plan.rules.get(1).map(|r| (r.trigger, r.action)),
            Some((FailpointTrigger::Key(3), FailpointAction::Error))
        );
        assert_eq!(
            plan.rules.get(2).map(|r| (r.trigger, r.action)),
            Some((FailpointTrigger::Rate(1.0), FailpointAction::Delay(20)))
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "sched/job",
            "sched/job=panic",
            "sched/job=2.0:panic",
            "sched/job=0.5:explode",
            "sched/job=@x:panic",
            "seed=no",
            "sched/job=0.5:delay:soon",
        ] {
            assert!(FailpointPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FailpointPlan::parse("seed=1,sched/job=0:panic").unwrap();
        assert!((0..10_000).all(|k| plan.decide(SITE_SCHED_JOB, k).is_none()));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FailpointPlan::parse("seed=42,sched/job=0.2:panic").unwrap();
        let fired: Vec<u64> = (0..1000)
            .filter(|&k| plan.decide(SITE_SCHED_JOB, k).is_some())
            .collect();
        let again: Vec<u64> = (0..1000)
            .filter(|&k| plan.decide(SITE_SCHED_JOB, k).is_some())
            .collect();
        assert_eq!(fired, again, "same plan, same firing set");
        assert!(
            !fired.is_empty() && fired.len() < 1000,
            "a 20% rate fires on some but not all of 1000 keys (got {})",
            fired.len()
        );
        let reseeded = FailpointPlan::parse("seed=43,sched/job=0.2:panic").unwrap();
        let other: Vec<u64> = (0..1000)
            .filter(|&k| reseeded.decide(SITE_SCHED_JOB, k).is_some())
            .collect();
        assert_ne!(fired, other, "different seeds fire on different key sets");
    }

    #[test]
    fn key_trigger_fires_exactly_once() {
        let plan = FailpointPlan::parse("sched/job=@17:abort").unwrap();
        let fired: Vec<u64> = (0..100)
            .filter(|&k| plan.decide(SITE_SCHED_JOB, k).is_some())
            .collect();
        assert_eq!(fired, vec![17]);
        assert_eq!(
            plan.decide(SITE_SCHED_JOB, 17),
            Some(FailpointAction::Abort)
        );
        assert_eq!(plan.decide(SITE_CACHE_STORE, 17), None, "site-scoped");
    }

    #[test]
    fn global_latch_arms_and_clears() {
        // Single test owns the global plan; other tests use `decide`.
        assert_eq!(check(SITE_SCHED_JOB, 5), None, "unconfigured is silent");
        let plan = FailpointPlan::parse("sched/job=@5:error").unwrap();
        configure(Some(plan));
        assert_eq!(check(SITE_SCHED_JOB, 5), Some(FailpointAction::Error));
        assert_eq!(check(SITE_SCHED_JOB, 6), None);
        configure(None);
        assert_eq!(check(SITE_SCHED_JOB, 5), None, "cleared plan is silent");
    }
}

//! Quality-of-service accounting.
//!
//! The paper's headline metric is **energy per unit QoS**. A QoS unit is a
//! deadline-bearing job delivered to the user: an on-time job earns its
//! full weight, a slightly late job earns exponentially decayed credit
//! (`exp(-tardiness / tolerance)`), and a job later than
//! `violation_factor · tolerance` counts as a *violation* — the
//! "compromising user satisfaction" condition the paper's policy must
//! avoid.

use simkit::SimDuration;

use soc::{CompletedJob, JobClass};

/// Per-scenario QoS accounting parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    /// Tardiness at which credit has decayed to `1/e`.
    pub tolerance: SimDuration,
    /// Tardiness beyond `violation_factor × tolerance` is a violation.
    pub violation_factor: f64,
}

impl QosSpec {
    /// A spec with the given tolerance and the default violation factor
    /// of 2.
    pub fn with_tolerance(tolerance: SimDuration) -> Self {
        QosSpec {
            tolerance,
            violation_factor: 2.0,
        }
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::with_tolerance(SimDuration::from_millis(20))
    }
}

/// QoS weight of a job class: how much one delivered job of this class is
/// worth to the user. Background work carries no QoS value.
pub(crate) fn class_weight(class: JobClass) -> f64 {
    match class {
        JobClass::Heavy => 1.0,
        JobClass::Normal => 1.0,
        JobClass::Light => 1.0,
        JobClass::Background => 0.0,
    }
}

/// Streaming QoS accumulator over job completions.
///
/// ```
/// use simkit::{SimDuration, SimTime};
/// use soc::{CompletedJob, JobClass, JobId};
/// use workload::{QosSpec, QosTracker};
///
/// let mut tracker = QosTracker::new(QosSpec::with_tolerance(SimDuration::from_millis(10)));
/// tracker.observe(&CompletedJob {
///     id: JobId(1),
///     deadline: SimTime::from_millis(16),
///     completed_at: SimTime::from_millis(12),
///     class: JobClass::Heavy,
///     work: 1_000,
/// });
/// let report = tracker.finalize(0);
/// assert_eq!(report.on_time, 1);
/// assert_eq!(report.violations, 0);
/// assert!((report.units - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QosTracker {
    spec: QosSpec,
    units: f64,
    strict_units: f64,
    max_units: f64,
    completed: u64,
    on_time: u64,
    late: u64,
    violations: u64,
}

/// Final QoS figures for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosReport {
    /// Delivered QoS units (weighted, decay-discounted). Used as the
    /// learning signal: late work earns partial credit, so the gradient
    /// toward on-time delivery is smooth.
    pub units: f64,
    /// Strictly on-time QoS units (late work earns nothing). Used for the
    /// reported energy-per-QoS metric: a frame the user never saw in time
    /// delivered no QoS.
    pub strict_units: f64,
    /// The units that would have been delivered had every job been on
    /// time (including jobs that never completed).
    pub max_units: f64,
    /// Completed jobs.
    pub completed: u64,
    /// Jobs that met their deadline.
    pub on_time: u64,
    /// Jobs that finished after their deadline.
    pub late: u64,
    /// Jobs later than the violation threshold, plus jobs that never
    /// finished.
    pub violations: u64,
}

impl QosReport {
    /// Delivered fraction of the achievable QoS, in `[0, 1]`.
    pub fn qos_ratio(&self) -> f64 {
        if self.max_units == 0.0 {
            1.0
        } else {
            (self.units / self.max_units).clamp(0.0, 1.0)
        }
    }

    /// Violation rate over deadline-bearing jobs.
    pub fn violation_rate(&self) -> f64 {
        let total = self.completed + self.violations.saturating_sub(self.violation_overlap());
        if total == 0 {
            0.0
        } else {
            self.violations as f64 / total.max(1) as f64
        }
    }

    /// Violations that are also counted in `completed` (late completions
    /// past the threshold); the remainder are never-finished jobs.
    fn violation_overlap(&self) -> u64 {
        self.violations.min(self.late)
    }

    /// Energy per delivered QoS unit, the paper's headline metric,
    /// counting only strictly on-time units.
    ///
    /// Returns `f64::INFINITY` when no QoS was delivered — a policy that
    /// delivers nothing is infinitely bad, not free.
    pub fn energy_per_qos(&self, energy_j: f64) -> f64 {
        if self.strict_units <= 0.0 {
            f64::INFINITY
        } else {
            energy_j / self.strict_units
        }
    }
}

impl QosTracker {
    /// Creates a tracker with the given spec.
    pub fn new(spec: QosSpec) -> Self {
        QosTracker {
            spec,
            units: 0.0,
            strict_units: 0.0,
            max_units: 0.0,
            completed: 0,
            on_time: 0,
            late: 0,
            violations: 0,
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> QosSpec {
        self.spec
    }

    /// Consumes one completion.
    pub fn observe(&mut self, job: &CompletedJob) {
        let weight = class_weight(job.class);
        self.completed += 1;
        self.max_units += weight;
        if job.met_deadline() {
            self.on_time += 1;
            self.units += weight;
            self.strict_units += weight;
        } else {
            self.late += 1;
            let tardiness = job.tardiness().as_secs_f64();
            let tol = self.spec.tolerance.as_secs_f64();
            self.units += weight * (-tardiness / tol).exp();
            if tardiness > self.spec.violation_factor * tol && weight > 0.0 {
                self.violations += 1;
            }
        }
    }

    /// Consumes every completion in an iterator.
    pub fn observe_all<'a, I: IntoIterator<Item = &'a CompletedJob>>(&mut self, jobs: I) {
        for job in jobs {
            self.observe(job);
        }
    }

    /// Delivered units so far (for per-epoch rewards).
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Closes accounting: jobs still queued or pending at the end of the
    /// run are violations that delivered nothing.
    pub fn finalize(mut self, unfinished: usize) -> QosReport {
        self.violations += unfinished as u64;
        self.max_units += unfinished as f64;
        QosReport {
            units: self.units,
            strict_units: self.strict_units,
            max_units: self.max_units,
            completed: self.completed,
            on_time: self.on_time,
            late: self.late,
            violations: self.violations,
        }
    }

    /// A snapshot report without consuming the tracker (no unfinished-job
    /// accounting).
    pub fn snapshot(&self) -> QosReport {
        QosReport {
            units: self.units,
            strict_units: self.strict_units,
            max_units: self.max_units,
            completed: self.completed,
            on_time: self.on_time,
            late: self.late,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simkit::SimTime;
    use soc::JobId;

    fn done(deadline_ms: u64, completed_ms: u64, class: JobClass) -> CompletedJob {
        CompletedJob {
            id: JobId(0),
            deadline: SimTime::from_millis(deadline_ms),
            completed_at: SimTime::from_millis(completed_ms),
            class,
            work: 1,
        }
    }

    fn spec() -> QosSpec {
        QosSpec::with_tolerance(SimDuration::from_millis(10))
    }

    #[test]
    fn on_time_jobs_earn_full_credit() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 16, JobClass::Heavy));
        t.observe(&done(16, 3, JobClass::Normal));
        let r = t.finalize(0);
        assert_eq!(r.units, 2.0);
        assert_eq!(r.on_time, 2);
        assert_eq!(r.qos_ratio(), 1.0);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn late_jobs_earn_decayed_credit() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 26, JobClass::Heavy)); // 10 ms late = 1 tolerance
        let r = t.finalize(0);
        assert!((r.units - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(r.late, 1);
        assert_eq!(r.violations, 0, "within 2x tolerance");
    }

    #[test]
    fn very_late_jobs_are_violations() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 57, JobClass::Heavy)); // 41 ms late > 2 × 10 ms
        let r = t.finalize(0);
        assert_eq!(r.violations, 1);
        assert!(r.units < 0.02, "credit nearly gone: {}", r.units);
    }

    #[test]
    fn background_jobs_carry_no_qos_weight() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 500, JobClass::Background));
        let r = t.finalize(0);
        assert_eq!(r.units, 0.0);
        assert_eq!(r.max_units, 0.0);
        assert_eq!(r.violations, 0, "late background work is not a violation");
        assert_eq!(r.qos_ratio(), 1.0, "no deadline-bearing work = perfect QoS");
    }

    #[test]
    fn unfinished_jobs_count_as_violations() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 10, JobClass::Heavy));
        let r = t.finalize(3);
        assert_eq!(r.violations, 3);
        assert_eq!(r.max_units, 4.0);
        assert!((r.qos_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn energy_per_qos_basic_and_degenerate() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 10, JobClass::Heavy));
        let r = t.finalize(0);
        assert_eq!(r.energy_per_qos(2.0), 2.0);

        let empty = QosTracker::new(spec()).finalize(0);
        assert_eq!(empty.energy_per_qos(2.0), f64::INFINITY);
    }

    #[test]
    fn late_work_earns_soft_credit_but_no_strict_units() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 20, JobClass::Heavy)); // 4 ms late
        let r = t.finalize(0);
        assert!(r.units > 0.5, "soft credit for the learning signal");
        assert_eq!(r.strict_units, 0.0, "no reported QoS for late frames");
        assert_eq!(r.energy_per_qos(1.0), f64::INFINITY);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut t = QosTracker::new(spec());
        t.observe(&done(16, 10, JobClass::Heavy));
        let s1 = t.snapshot();
        t.observe(&done(33, 30, JobClass::Heavy));
        let s2 = t.snapshot();
        assert_eq!(s1.completed, 1);
        assert_eq!(s2.completed, 2);
    }

    #[test]
    fn default_spec_is_sane() {
        let s = QosSpec::default();
        assert_eq!(s.tolerance, SimDuration::from_millis(20));
        assert_eq!(s.violation_factor, 2.0);
    }

    proptest! {
        /// Credit is monotone non-increasing in tardiness.
        #[test]
        fn prop_credit_monotone_in_tardiness(a in 0u64..200, b in 0u64..200) {
            let (early, late) = if a <= b { (a, b) } else { (b, a) };
            let mut t_early = QosTracker::new(spec());
            let mut t_late = QosTracker::new(spec());
            t_early.observe(&done(100, 100 + early, JobClass::Heavy));
            t_late.observe(&done(100, 100 + late, JobClass::Heavy));
            prop_assert!(t_early.units() >= t_late.units() - 1e-12);
        }

        /// Units never exceed max_units and the ratio stays in [0, 1].
        #[test]
        fn prop_units_bounded(lates in proptest::collection::vec(0u64..500, 0..50), unfinished in 0usize..10) {
            let mut t = QosTracker::new(spec());
            for &l in &lates {
                t.observe(&done(100, 100 + l, JobClass::Normal));
            }
            let r = t.finalize(unfinished);
            prop_assert!(r.units <= r.max_units + 1e-9);
            let ratio = r.qos_ratio();
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
    }
}

//! Fixed-point Q-table and agent: the functional specification the RTL
//! model must match bit-for-bit.

use rlpm::fixed::Fx;
use rlpm::{Action, QTable, StateIndex};

/// A dense `states × actions` table of Q16.16 values, mirroring
/// [`rlpm::QTable`] in the representation the hardware BRAMs hold.
///
/// Each entry carries the odd-parity bit a BRAM with parity would store
/// alongside the 32 data bits. Writes through the functional interface
/// ([`FxQTable::set`] / [`FxQTable::set_linear`]) keep it consistent;
/// [`FxQTable::corrupt_bit`] models a single-event upset by flipping a
/// data bit *without* updating the parity, which is exactly what the
/// parity checkers then detect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FxQTable {
    num_states: usize,
    num_actions: usize,
    values: Vec<Fx>,
    parity: Vec<u8>,
}

impl FxQTable {
    /// Creates a table with every entry set to `init`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_states: usize, num_actions: usize, init: Fx) -> Self {
        assert!(
            num_states > 0 && num_actions > 0,
            "table dimensions must be positive"
        );
        FxQTable {
            num_states,
            num_actions,
            values: vec![init; num_states * num_actions],
            parity: vec![Self::parity_of(init); num_states * num_actions],
        }
    }

    /// Imports a software-trained Q-table (the "table load" the CPU
    /// performs over the register interface after offline training). The
    /// float→fixed quantisation happens on the software side, in
    /// [`QTable::quantized`]; this module stays float-free.
    pub fn from_software(table: &QTable) -> Self {
        // xtask-allow: fx-taint -- table load: quantisation runs in software (QTable::quantized); this module receives fixed-point words only
        let values = table.quantized();
        let parity = values.iter().map(|&v| Self::parity_of(v)).collect();
        FxQTable {
            num_states: table.num_states(),
            num_actions: table.num_actions(),
            values,
            parity,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    #[inline]
    fn idx(&self, s: StateIndex, a: Action) -> usize {
        debug_assert!(s < self.num_states && a < self.num_actions);
        s * self.num_actions + a
    }

    /// The value at `(s, a)`.
    pub fn get(&self, s: StateIndex, a: Action) -> Fx {
        self.values[self.idx(s, a)]
    }

    /// Sets the value at `(s, a)`. Out-of-range writes (debug-asserted
    /// in `idx`) are dropped, mirroring a write past the BRAM decoder.
    pub fn set(&mut self, s: StateIndex, a: Action, v: Fx) {
        let i = self.idx(s, a);
        if let (Some(slot), Some(p)) = (self.values.get_mut(i), self.parity.get_mut(i)) {
            *slot = v;
            *p = Self::parity_of(v);
        }
    }

    /// The action row for `s`.
    pub fn row(&self, s: StateIndex) -> &[Fx] {
        let start = self.idx(s, 0);
        &self.values[start..start + self.num_actions]
    }

    /// Lowest-index argmax — the same tie-break the comparator tree
    /// implements (left operand wins on equality).
    pub fn argmax(&self, s: StateIndex) -> Action {
        let row = self.row(s);
        let mut best = 0;
        for (a, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = a;
            }
        }
        best
    }

    /// The maximum value in state `s`.
    pub fn max_value(&self, s: StateIndex) -> Fx {
        let row = self.row(s);
        row.iter().copied().fold(Fx::MIN, Fx::max)
    }

    /// Linear (BRAM-address) access for the register-interface table
    /// loader.
    pub fn get_linear(&self, addr: usize) -> Option<Fx> {
        self.values.get(addr).copied()
    }

    /// Linear write; returns false if the address is out of range.
    pub fn set_linear(&mut self, addr: usize, v: Fx) -> bool {
        match (self.values.get_mut(addr), self.parity.get_mut(addr)) {
            (Some(slot), Some(p)) => {
                *slot = v;
                *p = Self::parity_of(v);
                true
            }
            _ => false,
        }
    }

    /// Total number of linear entries (`states × actions`).
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// The odd-parity bit the BRAM stores next to a value's 32 data bits
    /// (pure integer arithmetic — this module stays float-free).
    fn parity_of(v: Fx) -> u8 {
        ((v.to_bits() as u32).count_ones() % 2) as u8
    }

    /// Models a single-event upset: flips data bit `bit % 32` of the entry
    /// at linear address `addr` *without* updating the stored parity.
    /// Returns false (no flip) if `addr` is out of range.
    pub fn corrupt_bit(&mut self, addr: usize, bit: u32) -> bool {
        if let Some(slot) = self.values.get_mut(addr) {
            let flipped = (slot.to_bits() as u32) ^ (1u32 << (bit % 32));
            *slot = Fx::from_bits(flipped as i32);
            true
        } else {
            false
        }
    }

    /// Whether the entry at linear address `addr` passes its parity check
    /// (out-of-range addresses vacuously pass).
    pub fn entry_parity_ok(&self, addr: usize) -> bool {
        match (self.values.get(addr), self.parity.get(addr)) {
            (Some(&v), Some(&p)) => Self::parity_of(v) == p,
            _ => true,
        }
    }

    /// Whether every entry of state `s`'s action row passes parity — the
    /// check the fetch stage performs while streaming the row.
    pub fn row_parity_ok(&self, s: StateIndex) -> bool {
        let start = s * self.num_actions;
        match (
            self.values.get(start..start + self.num_actions),
            self.parity.get(start..start + self.num_actions),
        ) {
            (Some(vals), Some(pars)) => vals
                .iter()
                .zip(pars)
                .all(|(&v, &p)| Self::parity_of(v) == p),
            _ => true,
        }
    }

    /// Linear address of the first entry failing its parity check, if any
    /// (the full-table scrub a verify-after-load performs).
    pub fn first_parity_error(&self) -> Option<usize> {
        self.values
            .iter()
            .zip(&self.parity)
            .position(|(&v, &p)| Self::parity_of(v) != p)
    }

    /// Whether the whole table passes parity.
    pub fn all_parity_ok(&self) -> bool {
        self.first_parity_error().is_none()
    }
}

/// Fixed-point Q-learning agent: the bit-exact software twin of the
/// hardware update pipeline (used for parity checks and for driving the
/// engine's expected outputs in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FxAgent {
    table: FxQTable,
    /// Learning rate in fixed point.
    pub alpha: Fx,
    /// Discount factor in fixed point.
    pub gamma: Fx,
}

impl FxAgent {
    /// Creates an agent over a fixed-point table.
    pub fn new(table: FxQTable, alpha: Fx, gamma: Fx) -> Self {
        FxAgent {
            table,
            alpha,
            gamma,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &FxQTable {
        &self.table
    }

    /// Mutable table access.
    pub fn table_mut(&mut self) -> &mut FxQTable {
        &mut self.table
    }

    /// Greedy action (comparator-tree semantics).
    pub fn greedy_action(&self, s: StateIndex) -> Action {
        self.table.argmax(s)
    }

    /// One TD update in pure fixed point:
    /// `Q ← Q + α·(r + γ·max − Q)`, every operation saturating Q16.16.
    pub fn update(&mut self, s: StateIndex, a: Action, reward: Fx, s_next: StateIndex) {
        let max_next = self.table.max_value(s_next);
        let target = reward.saturating_add(self.gamma.saturating_mul(max_next));
        let old = self.table.get(s, a);
        let delta = self.alpha.saturating_mul(target.saturating_sub(old));
        self.table.set(s, a, old.saturating_add(delta));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> FxQTable {
        FxQTable::new(8, 5, Fx::from_f64(0.5))
    }

    #[test]
    fn from_f64_round_trips_representable_values() {
        let mut q = QTable::new(3, 2, 0.0);
        q.set(1, 1, 1.25);
        q.set(2, 0, -3.5);
        let fx = FxQTable::from_software(&q);
        assert_eq!(fx.get(1, 1).to_f64(), 1.25);
        assert_eq!(fx.get(2, 0).to_f64(), -3.5);
        assert_eq!(fx.get(0, 0).to_f64(), 0.0);
    }

    #[test]
    fn argmax_matches_float_table_semantics() {
        let mut fx = table();
        fx.set(3, 2, Fx::from_f64(2.0));
        fx.set(3, 4, Fx::from_f64(2.0));
        assert_eq!(fx.argmax(3), 2, "lowest-index tie-break");
    }

    #[test]
    fn linear_access_maps_row_major() {
        let mut fx = table();
        assert!(fx.set_linear(5 * 5 + 3, Fx::from_f64(9.0)));
        assert_eq!(fx.get(5, 3).to_f64(), 9.0);
        assert_eq!(fx.get_linear(5 * 5 + 3).unwrap().to_f64(), 9.0);
        assert!(!fx.set_linear(8 * 5, Fx::ZERO), "out of range rejected");
        assert_eq!(fx.get_linear(8 * 5), None);
    }

    #[test]
    fn parity_holds_through_functional_writes() {
        let mut fx = table();
        assert!(fx.all_parity_ok());
        fx.set(3, 2, Fx::from_f64(-7.25));
        assert!(fx.set_linear(11, Fx::from_f64(0.125)));
        assert!(fx.all_parity_ok());
        assert_eq!(fx.num_entries(), 8 * 5);
    }

    #[test]
    fn corrupt_bit_is_caught_by_every_checker() {
        let mut fx = table();
        let addr = 3 * 5 + 2; // (s=3, a=2)
        assert!(fx.corrupt_bit(addr, 7));
        assert!(!fx.entry_parity_ok(addr));
        assert!(!fx.row_parity_ok(3));
        assert!(fx.row_parity_ok(2), "other rows unaffected");
        assert_eq!(fx.first_parity_error(), Some(addr));
        assert!(!fx.all_parity_ok());
        // A functional rewrite of the entry restores consistency.
        fx.set(3, 2, Fx::from_f64(0.5));
        assert!(fx.all_parity_ok());
    }

    #[test]
    fn corrupt_bit_rejects_out_of_range_and_wraps_bit_index() {
        let mut fx = table();
        assert!(!fx.corrupt_bit(8 * 5, 0), "out of range");
        assert!(fx.all_parity_ok());
        // bit 39 wraps to bit 7: double corruption at the same bit is a
        // round trip.
        let before = fx.get(0, 0);
        assert!(fx.corrupt_bit(0, 39));
        assert!(fx.corrupt_bit(0, 7));
        assert_eq!(fx.get(0, 0), before);
        assert!(fx.all_parity_ok(), "even number of flips is invisible");
    }

    #[test]
    fn fx_update_converges_like_float() {
        let mut agent = FxAgent::new(
            FxQTable::new(2, 2, Fx::ZERO),
            Fx::from_f64(0.25),
            Fx::from_f64(0.85),
        );
        for _ in 0..2_000 {
            agent.update(0, 1, Fx::from_f64(1.0), 0);
        }
        let q_star = 1.0 / (1.0 - 0.85);
        assert!(
            (agent.table().get(0, 1).to_f64() - q_star).abs() < 0.01,
            "fx fixed point {} vs {}",
            agent.table().get(0, 1),
            q_star
        );
    }

    #[test]
    fn fx_update_is_deterministic_and_pure_integer() {
        let run = || {
            let mut agent = FxAgent::new(
                FxQTable::new(4, 3, Fx::from_f64(0.5)),
                Fx::from_f64(0.25),
                Fx::from_f64(0.85),
            );
            for i in 0..500u32 {
                let s = (i % 4) as usize;
                let a = (i % 3) as usize;
                let r = Fx::from_f64((i % 7) as f64 / 3.0 - 1.0);
                agent.update(s, a, r, (s + 1) % 4);
            }
            agent
                .table()
                .row(2)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    proptest! {
        /// The fixed-point update tracks the float update within the
        /// quantisation error budget for in-range values.
        #[test]
        fn prop_fx_update_tracks_float(
            q0 in -10.0f64..10.0,
            r in -5.0f64..5.0,
            max_next in -10.0f64..10.0,
        ) {
            let alpha = 0.25;
            let gamma = 0.85;
            let mut fx = FxQTable::new(2, 2, Fx::ZERO);
            fx.set(0, 0, Fx::from_f64(q0));
            fx.set(1, 0, Fx::from_f64(max_next));
            fx.set(1, 1, Fx::from_f64(max_next));
            let mut agent = FxAgent::new(fx, Fx::from_f64(alpha), Fx::from_f64(gamma));
            agent.update(0, 0, Fx::from_f64(r), 1);

            let float_result = q0 + alpha * (r + gamma * max_next - q0);
            let got = agent.table().get(0, 0).to_f64();
            prop_assert!((got - float_result).abs() < 1e-3, "{got} vs {float_result}");
        }
    }
}

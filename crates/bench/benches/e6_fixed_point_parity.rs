//! Bench for **E6** — hardware/software parity and the bit-width study.
//! Times the parity replay and prints the regenerated parity and sweep
//! tables.

use criterion::{criterion_group, criterion_main, Criterion};

use experiments::e6_fixed_point::{parity_table, run_parity, run_sweep, sweep_table};
use rlpm::RlConfig;
use rlpm_hw::{parity_check, HwConfig};

fn bench_e6(c: &mut Criterion) {
    let soc_config = bench::soc_under_test();

    let report = run_parity(&soc_config, 20_000, 6);
    println!("{}", parity_table(&report).to_markdown());
    let points = run_sweep(&soc_config, 10_000, 6);
    println!("{}", sweep_table(&points).to_markdown());

    let rl = RlConfig::for_soc(&soc_config);
    let mut group = c.benchmark_group("e6");
    group.sample_size(10);
    group.bench_function("parity_replay_10k_transitions", |b| {
        b.iter(|| parity_check(&rl, HwConfig::default(), 10_000, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);

//! Taint-engine fixture: the enforcement surface. The engine tests point
//! every surface at this file (fx datapath, hotpath fences, determinism
//! crate `alpha`, panic ratchet), so each entry point below exercises one
//! enforcement path. Not compiled into any crate.

/// fx-taint positive: two-hop chain surface → mix → scale_lut (float).
pub fn fx_step(x: i64) -> i64 {
    mix(x)
}

/// fx-taint suppressed: same tainted callee, justified allow on the edge.
pub fn fx_allowed(x: i64) -> i64 {
    // xtask-allow: fx-taint -- table regenerated offline; datapath only sees integers
    mix(x)
}

/// alloc-taint positive: the fenced loop calls an allocating helper.
pub fn hot_loop(xs: &[i64]) -> i64 {
    let mut acc = 0;
    // xtask-hotpath: begin
    for x in xs.iter() {
        acc += clean_add(*x);
        acc += staging_buffer(acc);
    }
    // xtask-hotpath: end
    acc
}

/// alloc-taint negative: identical call, but outside any fence.
pub fn cold_copy(x: i64) -> i64 {
    staging_buffer(x)
}

/// determinism-taint positive: reaches a wall-clock read in crate `beta`.
pub fn epoch_seed(n: u64) -> u64 {
    jitter(n)
}

/// panic-taint positive: transitively reaches an indexing expression.
pub fn lib_entry(n: u64) -> u64 {
    checked_pick(n)
}

/// panic-taint negative: the callee's seed is suppressed with a justified
/// lexical allow, so the taint never propagates here.
pub fn quiet_entry(n: u64) -> u64 {
    quiet_pick(n)
}

/// Fully clean entry point: no taint of any kind may attach.
pub fn clean_entry(n: u64) -> u64 {
    clean_add(n as i64) as u64
}

//! Taint-engine fixture: mid-chain helpers in the same crate (`alpha`) as
//! the surface. Not compiled into any crate.

/// Float-tainted transitively: forwards into crate `beta`'s float LUT.
pub fn mix(x: i64) -> i64 {
    scale_lut(x) + 1
}

/// Clean arithmetic; must never pick up taint.
pub fn clean_add(x: i64) -> i64 {
    x.wrapping_add(7)
}

/// Alloc seed: allocates a staging vector.
pub fn staging_buffer(x: i64) -> i64 {
    let v = vec![x; 4];
    v.iter().sum()
}

/// Panic seed: the modulo keeps the index in range, but lexically this is
/// still a panicking construct — deliberately unsuppressed.
pub fn checked_pick(n: u64) -> u64 {
    let xs = [1u64, 2, 3];
    xs[(n as usize) % 3]
}

/// Panic seed with a justified allow: must not propagate to callers.
pub fn quiet_pick(n: u64) -> u64 {
    let xs = [4u64, 5, 6];
    // xtask-allow: no-panic-lib -- index is n % 3, always in bounds
    xs[(n as usize) % 3]
}

//! [`RlGovernor`] — the paper's policy behind the common governor
//! interface.
//!
//! Each epoch boundary it (1) feeds the observation to the predictor,
//! (2) encodes the discrete state, (3) closes the previous transition
//! with a TD update using the epoch's reward, (4) ε-greedily picks the
//! next action, and (5) applies the per-cluster level deltas. Freezing
//! the agent turns the same object into the evaluation-mode policy used
//! for the headline comparison.

use governors::{Governor, SystemState};
use simkit::obs;
use soc::LevelRequest;

use crate::reward::{EpochOutcome, RewardFn};
use crate::{Action, ActionSpace, Predictor, QLearningAgent, RlConfig, StateIndex, StateSpace};

/// Decisions taken by any [`RlGovernor`] instance in this process.
static DECISIONS: obs::Counter = obs::Counter::new("rlpm.decisions");
/// Decisions where the ε-greedy selector explored rather than exploited.
static EXPLORATIONS: obs::Counter = obs::Counter::new("rlpm.explorations");
/// TD updates applied to the Q-table.
static TD_UPDATES: obs::Counter = obs::Counter::new("rlpm.td_updates");

/// The Q-learning power-management governor.
#[derive(Debug, Clone)]
pub struct RlGovernor {
    config: RlConfig,
    states: StateSpace,
    actions: ActionSpace,
    agent: QLearningAgent,
    predictor: Predictor,
    reward_fn: RewardFn,
    prev: Option<(StateIndex, Action)>,
    last_reward: Option<f64>,
    sink: Option<crate::sink::DecisionSink>,
    epoch_counter: u64,
}

impl RlGovernor {
    /// Creates the governor from a validated configuration and an
    /// exploration seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`RlConfig::validate`]).
    pub fn new(config: RlConfig, seed: u64) -> Self {
        config.validate();
        RlGovernor {
            states: StateSpace::new(&config),
            actions: ActionSpace::new(&config),
            agent: QLearningAgent::new(&config, seed),
            predictor: Predictor::new(&config),
            reward_fn: RewardFn::from_config(&config),
            config,
            prev: None,
            last_reward: None,
            sink: None,
            epoch_counter: 0,
        }
    }

    /// Attaches a decision-trace sink; every subsequent `decide` appends
    /// one [`crate::sink::DecisionRecord`]. The sink is purely
    /// observational: attaching it never changes the decisions taken.
    /// Epoch numbering in the trace restarts at 1 on each attachment, so
    /// traces count from the moment observation began, not from policy
    /// construction (which may include training epochs).
    pub fn set_decision_sink(&mut self, sink: Option<crate::sink::DecisionSink>) {
        if sink.is_some() {
            self.epoch_counter = 0;
        }
        self.sink = sink;
    }

    /// The configuration in use.
    pub fn config(&self) -> &RlConfig {
        &self.config
    }

    /// The state encoder.
    pub fn state_space(&self) -> &StateSpace {
        &self.states
    }

    /// The action encoder.
    pub fn action_space(&self) -> &ActionSpace {
        &self.actions
    }

    /// The learning agent (Q-table access, ε/α inspection).
    pub fn agent(&self) -> &QLearningAgent {
        &self.agent
    }

    /// Mutable agent access (loading trained tables, freezing).
    pub fn agent_mut(&mut self) -> &mut QLearningAgent {
        &mut self.agent
    }

    /// Freezes (`true`) or unfreezes (`false`) learning and exploration.
    pub fn set_frozen(&mut self, frozen: bool) {
        self.agent.set_frozen(frozen);
    }

    /// The reward granted at the most recent decision (None before the
    /// second decision of an episode).
    pub fn last_reward(&self) -> Option<f64> {
        self.last_reward
    }

    /// Computes the reward signal for an observation (exposed for the
    /// hardware model, which computes the same quantity in fixed point).
    pub fn reward_of(&self, state: &SystemState) -> f64 {
        self.reward_fn.reward(&EpochOutcome {
            qos_units: state.qos.units,
            energy_j: state.soc.energy_j,
            violations: state.qos.violations,
            pending_jobs: state.qos.pending_jobs,
        })
    }
}

impl Governor for RlGovernor {
    fn name(&self) -> &str {
        "rlpm"
    }

    fn decide(&mut self, state: &SystemState) -> LevelRequest {
        let mut request = LevelRequest::new(Vec::new());
        self.decide_into(state, &mut request);
        request
    }

    fn decide_into(&mut self, state: &SystemState, request: &mut LevelRequest) {
        self.predictor.observe(state);
        let s = self.states.encode(state, &self.predictor);
        let had_prev = self.prev.is_some();
        let updates_before = self.agent.updates();

        // SARSA is on-policy: the bootstrap needs the action actually
        // taken in `s`, so the selection happens before the update. The
        // off-policy algorithms update first so the fresh values inform
        // this very decision.
        let a = if self.agent.algorithm() == crate::Algorithm::Sarsa {
            let a = self.agent.select_action(s);
            if let Some((ps, pa)) = self.prev {
                let r = self.reward_of(state);
                self.agent.update_with_next(ps, pa, r, s, a);
                self.last_reward = Some(r);
            }
            a
        } else {
            if let Some((ps, pa)) = self.prev {
                let r = self.reward_of(state);
                self.agent.update(ps, pa, r, s);
                self.last_reward = Some(r);
            }
            self.agent.select_action(s)
        };
        self.prev = Some((s, a));

        let updated = self.agent.updates() != updates_before;
        DECISIONS.inc();
        if self.agent.last_explored() {
            EXPLORATIONS.inc();
        }
        if updated {
            TD_UPDATES.inc();
        }
        {
            self.epoch_counter += 1;
            if let Some(sink) = &self.sink {
                sink.record(&crate::sink::DecisionRecord {
                    epoch: self.epoch_counter,
                    state: s,
                    explored: self.agent.last_explored(),
                    action: a,
                    reward: if had_prev { self.last_reward } else { None },
                    q_delta: updated.then(|| self.agent.last_td_delta()),
                });
            }
        }
        self.actions
            .apply_into(state.soc.clusters.iter().map(|c| c.level), a, request);
    }

    fn reset(&mut self) {
        // New episode: drop the dangling transition and predictor memory,
        // keep everything learned.
        self.prev = None;
        self.last_reward = None;
        self.predictor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::state::synthetic_state;
    use governors::QosFeedback;
    use soc::SocConfig;

    fn governor() -> RlGovernor {
        RlGovernor::new(
            RlConfig::for_soc(&SocConfig::odroid_xu3_like().unwrap()),
            42,
        )
    }

    fn obs(util: f64, levels: (usize, usize), qos: QosFeedback) -> SystemState {
        let mut s = synthetic_state(&[
            (
                util,
                levels.0,
                13,
                200_000_000 + levels.0 as u64 * 100_000_000,
                (200_000_000, 1_400_000_000),
            ),
            (
                util,
                levels.1,
                19,
                200_000_000 + levels.1 as u64 * 100_000_000,
                (200_000_000, 2_000_000_000),
            ),
        ]);
        s.qos = qos;
        s.soc.energy_j = 0.05;
        s
    }

    #[test]
    fn decisions_are_valid_level_requests() {
        let mut g = governor();
        for level in [0usize, 5, 12] {
            let req = g.decide(&obs(0.5, (level, level), QosFeedback::default()));
            assert_eq!(req.levels.len(), 2);
            assert!(req.levels[0] < 13 && req.levels[1] < 19);
            // Delta actions move at most max_delta from the current level.
            assert!((req.levels[0] as isize - level as isize).abs() <= 2);
        }
    }

    #[test]
    fn learning_happens_from_the_second_decision() {
        let mut g = governor();
        assert_eq!(g.agent().updates(), 0);
        g.decide(&obs(0.5, (3, 3), QosFeedback::default()));
        assert_eq!(
            g.agent().updates(),
            0,
            "first decision has no prior transition"
        );
        g.decide(&obs(0.5, (3, 3), QosFeedback::default()));
        assert_eq!(g.agent().updates(), 1);
        assert!(g.last_reward().is_some());
    }

    #[test]
    fn reset_starts_a_fresh_episode_but_keeps_learning() {
        let mut g = governor();
        g.decide(&obs(0.5, (3, 3), QosFeedback::default()));
        g.decide(&obs(0.5, (3, 3), QosFeedback::default()));
        let updates = g.agent().updates();
        g.reset();
        assert!(g.last_reward().is_none());
        g.decide(&obs(0.5, (3, 3), QosFeedback::default()));
        assert_eq!(
            g.agent().updates(),
            updates,
            "no update across the episode boundary"
        );
    }

    #[test]
    fn frozen_governor_is_deterministic() {
        let mut g = governor();
        // Train a bit.
        for i in 0..200 {
            let util = (i % 10) as f64 / 10.0;
            g.decide(&obs(util, (5, 5), QosFeedback::default()));
        }
        g.set_frozen(true);
        let run = |g: &mut RlGovernor| {
            (0..20)
                .map(|i| {
                    let util = (i % 5) as f64 / 5.0;
                    g.decide(&obs(util, (6, 6), QosFeedback::default())).levels
                })
                .collect::<Vec<_>>()
        };
        let mut g2 = g.clone();
        assert_eq!(run(&mut g), run(&mut g2));
    }

    #[test]
    fn violations_produce_negative_reward() {
        let g = governor();
        let bad = obs(
            1.0,
            (0, 0),
            QosFeedback {
                qos_ratio: 0.3,
                units: 0.1,
                violations: 5,
                pending_jobs: 12,
            },
        );
        assert!(g.reward_of(&bad) < 0.0);
        let good = obs(
            0.5,
            (5, 5),
            QosFeedback {
                qos_ratio: 1.0,
                units: 1.5,
                violations: 0,
                pending_jobs: 0,
            },
        );
        assert!(g.reward_of(&good) > g.reward_of(&bad));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(governor().name(), "rlpm");
    }

    #[test]
    fn decision_sink_observes_without_perturbing() {
        use crate::sink::{DecisionSink, TraceFormat};
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let drive = |g: &mut RlGovernor| {
            (0..30)
                .map(|i| {
                    let util = (i % 6) as f64 / 6.0;
                    g.decide(&obs(util, (5, 5), QosFeedback::default())).levels
                })
                .collect::<Vec<_>>()
        };
        let mut bare = governor();
        let mut traced = governor();
        let buf = Buf::default();
        let sink = DecisionSink::new(buf.clone(), TraceFormat::Csv);
        traced.set_decision_sink(Some(sink.clone()));
        assert_eq!(
            drive(&mut bare),
            drive(&mut traced),
            "sink must not feed back"
        );
        assert_eq!(sink.finish().unwrap(), 30);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 31, "header + one row per decision");
        assert!(lines[1].starts_with("1,"), "epochs are 1-based");
        // The first decision has no transition to close: empty reward/delta.
        assert!(lines[1].ends_with(",,"));
        // Later rows carry a reward once learning is underway.
        assert!(lines[5].split(',').nth(4).is_some_and(|r| !r.is_empty()));
    }

    #[test]
    fn learns_to_avoid_penalised_action_in_a_synthetic_loop() {
        // Synthetic MDP exercising the full decide() path: running below
        // level 5 on the big cluster causes violations; running above
        // costs energy. The learned greedy policy in the "comfortable"
        // state should not slam to the extremes.
        let mut g = governor();
        let mut levels = (6usize, 6usize);
        for _ in 0..3_000 {
            let qos = if levels.1 < 5 {
                QosFeedback {
                    qos_ratio: 0.4,
                    units: 0.2,
                    violations: 3,
                    pending_jobs: 8,
                }
            } else {
                QosFeedback {
                    qos_ratio: 1.0,
                    units: 1.0,
                    violations: 0,
                    pending_jobs: 0,
                }
            };
            let mut s = obs(0.6, levels, qos);
            // Energy grows with level.
            s.soc.energy_j = 0.01 + 0.01 * levels.1 as f64;
            let req = g.decide(&s);
            levels = (req.levels[0], req.levels[1]);
        }
        // Evaluate frozen from the comfortable state.
        g.set_frozen(true);
        g.reset();
        let mut levels = (6usize, 6usize);
        let mut visited = Vec::new();
        for _ in 0..50 {
            let qos = if levels.1 < 5 {
                QosFeedback {
                    qos_ratio: 0.4,
                    units: 0.2,
                    violations: 3,
                    pending_jobs: 8,
                }
            } else {
                QosFeedback {
                    qos_ratio: 1.0,
                    units: 1.0,
                    violations: 0,
                    pending_jobs: 0,
                }
            };
            let mut s = obs(0.6, levels, qos);
            s.soc.energy_j = 0.01 + 0.01 * levels.1 as f64;
            let req = g.decide(&s);
            levels = (req.levels[0], req.levels[1]);
            visited.push(levels.1);
        }
        let time_in_violation = visited.iter().filter(|&&l| l < 5).count();
        assert!(
            time_in_violation <= 10,
            "policy lingers in the violating region: {visited:?}"
        );
    }
}

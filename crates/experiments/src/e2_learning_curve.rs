//! **E2 — online-learning convergence**: energy per QoS unit per training
//! episode, the figure behind "learns power management controls to adapt
//! to the system's variations".

use governors::{Governor, GovernorKind};
use rlpm::{RlConfig, RlGovernor};
use soc::{Soc, SocConfig};
use workload::ScenarioKind;

use crate::par::parallel_map;
use crate::table::{fmt_f64, Table};
use crate::{cache, run, RunConfig};

/// Learning-curve configuration.
#[derive(Debug, Clone)]
pub struct E2Config {
    /// Scenario to learn on.
    pub scenario: ScenarioKind,
    /// Training episodes (curve length).
    pub episodes: u32,
    /// Simulated seconds per episode.
    pub episode_secs: u64,
    /// Seeds; curves are averaged pointwise.
    pub seeds: Vec<u64>,
}

impl Default for E2Config {
    fn default() -> Self {
        E2Config {
            scenario: ScenarioKind::Mixed,
            episodes: 200,
            episode_secs: 30,
            seeds: vec![11, 22, 33],
        }
    }
}

impl E2Config {
    /// A short curve for tests.
    pub fn quick() -> Self {
        E2Config {
            scenario: ScenarioKind::Video,
            episodes: 12,
            episode_secs: 10,
            seeds: vec![11],
        }
    }
}

/// The averaged curve plus reference lines.
#[derive(Debug, Clone, PartialEq)]
pub struct E2Result {
    /// Mean energy-per-QoS per episode (index = episode).
    pub curve: Vec<f64>,
    /// Mean epsilon per episode (exploration schedule readout).
    pub epsilon: Vec<f64>,
    /// `ondemand` reference on the same scenario (mean over seeds).
    pub ondemand_reference: f64,
}

/// Runs the learning-curve experiment.
pub fn run_e2(soc_config: &SocConfig, config: &E2Config) -> E2Result {
    // An invalid SoC config cannot produce measurements; its seeds are
    // dropped (callers always pass configs that already built a SoC).
    let soc_config_owned = soc_config.clone();
    let job_config = config.clone();
    let per_seed = parallel_map("e2", config.seeds.clone(), move |seed| {
        run_curve_seed(&soc_config_owned, &job_config, seed)
    });
    let per_seed: Vec<(Vec<f64>, Vec<f64>, f64)> = per_seed.into_iter().flatten().collect();

    let episodes = config.episodes as usize;
    let n = per_seed.len() as f64;
    let mut curve = vec![0.0; episodes];
    let mut epsilon = vec![0.0; episodes];
    let mut reference = 0.0;
    for (c, e, r) in &per_seed {
        for (acc, v) in curve.iter_mut().zip(c) {
            *acc += v / n;
        }
        for (acc, v) in epsilon.iter_mut().zip(e) {
            *acc += v / n;
        }
        reference += r / n;
    }
    E2Result {
        curve,
        epsilon,
        ondemand_reference: reference,
    }
}

/// One seed's full learning curve (per-episode energy-per-QoS and
/// epsilon, plus the ondemand reference), through the cache when it is
/// enabled: the whole per-seed series is one cache entry.
fn run_curve_seed(
    soc_config: &SocConfig,
    config: &E2Config,
    seed: u64,
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    if !cache::is_enabled() {
        return run_curve_seed_uncached(soc_config, config, seed);
    }
    let key = cache::Key::new("e2seed")
        .debug(soc_config)
        .str(config.scenario.name())
        .u64(u64::from(config.episodes))
        .u64(config.episode_secs)
        .u64(seed)
        .finish();
    let bytes = cache::get_or_compute("e2seed", key, || {
        let (curve, epsilon, reference) = run_curve_seed_uncached(soc_config, config, seed)?;
        let mut enc = cache::Enc::new();
        enc.f64s(&curve);
        enc.f64s(&epsilon);
        enc.f64(reference);
        Some(enc.finish())
    })?;
    let mut dec = cache::Dec::new(&bytes);
    let decoded = (|| {
        let curve = dec.f64s()?;
        let epsilon = dec.f64s()?;
        let reference = dec.f64()?;
        if !dec.finished() {
            return None;
        }
        Some((curve, epsilon, reference))
    })();
    decoded.or_else(|| run_curve_seed_uncached(soc_config, config, seed))
}

fn run_curve_seed_uncached(
    soc_config: &SocConfig,
    config: &E2Config,
    seed: u64,
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let mut policy = RlGovernor::new(RlConfig::for_soc(soc_config), seed);
    let mut soc = Soc::new(soc_config.clone()).ok()?;
    let mut scenario = config.scenario.build(seed.wrapping_add(0xE2));
    let mut curve = Vec::with_capacity(config.episodes as usize);
    let mut epsilon = Vec::with_capacity(config.episodes as usize);
    for _ in 0..config.episodes {
        let metrics = run(
            &mut soc,
            scenario.as_mut(),
            &mut policy,
            RunConfig::seconds(config.episode_secs),
        );
        curve.push(metrics.energy_per_qos);
        epsilon.push(policy.agent().epsilon());
        soc.reset();
        scenario.reset();
        policy.reset();
    }
    // Reference baseline under the same seed stream.
    let mut soc = Soc::new(soc_config.clone()).ok()?;
    let mut scenario = config.scenario.build(seed.wrapping_add(0xE2));
    let mut ondemand = GovernorKind::Ondemand.build(soc_config);
    let reference = run(
        &mut soc,
        scenario.as_mut(),
        ondemand.as_mut(),
        RunConfig::seconds(config.episode_secs),
    )
    .energy_per_qos;
    Some((curve, epsilon, reference))
}

impl E2Result {
    /// Relative improvement from the first `k` episodes' mean to the last
    /// `k` episodes' mean (positive = learning reduced energy-per-QoS).
    pub fn improvement(&self, k: usize) -> f64 {
        let k = k.clamp(1, self.curve.len() / 2);
        let head: f64 = self.curve.iter().take(k).sum::<f64>() / k as f64;
        let tail: f64 = self.curve.iter().rev().take(k).sum::<f64>() / k as f64;
        1.0 - tail / head
    }

    /// The curve as a printable series table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "E2: learning curve (energy per QoS unit by training episode)",
            ["episode", "energy_per_qos", "epsilon"],
        );
        for (i, (&e, &eps)) in self.curve.iter().zip(&self.epsilon).enumerate() {
            table.push([i.to_string(), fmt_f64(e), fmt_f64(eps)]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_improves_and_epsilon_decays() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let result = run_e2(&soc_config, &E2Config::quick());
        assert_eq!(result.curve.len(), 12);
        assert!(result.curve.iter().all(|v| v.is_finite() && *v > 0.0));
        // Exploration decays monotonically.
        assert!(result.epsilon.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // Early learning on a periodic scenario should show improvement.
        let improvement = result.improvement(3);
        assert!(
            improvement > -0.2,
            "curve should not get much worse: {improvement} ({:?})",
            result.curve
        );
        assert!(result.ondemand_reference.is_finite());
        assert_eq!(result.table().len(), 12);
    }
}

//! `rlpm-sim` command implementations.

use std::error::Error;

use experiments::table::{fmt_f64, Table};
use experiments::{run, PolicyKind, RunConfig, RunMetrics, TrainingProtocol};
use governors::GovernorKind;
use rlpm::{persist, RlConfig, RlGovernor};
use simkit::SimDuration;
use soc::{Soc, SocConfig};
use workload::{RecordedTrace, ScenarioKind};

use crate::args::{Invocation, ParseArgsError};

type CmdResult = Result<(), Box<dyn Error>>;

/// Resolves a SoC preset name.
fn soc_config(name: &str) -> Result<SocConfig, Box<dyn Error>> {
    Ok(match name {
        "xu3" => SocConfig::odroid_xu3_like()?,
        "xu3-cstates" => SocConfig::odroid_xu3_like_cstates()?,
        "symmetric" => SocConfig::symmetric_quad()?,
        other => {
            return Err(ParseArgsError(format!(
                "unknown SoC preset {other:?} (xu3 | xu3-cstates | symmetric)"
            ))
            .into())
        }
    })
}

/// Resolves a scenario name: the catalog plus `standby` (which sits
/// outside [`ScenarioKind::ALL`] because it delivers no QoS units).
fn scenario_kind(name: &str) -> Result<ScenarioKind, Box<dyn Error>> {
    if name == ScenarioKind::Standby.name() {
        return Ok(ScenarioKind::Standby);
    }
    ScenarioKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            let mut names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
            names.push(ScenarioKind::Standby.name());
            ParseArgsError(format!(
                "unknown scenario {name:?} (one of: {})",
                names.join(", ")
            ))
            .into()
        })
}

/// Resolves a policy name.
fn policy_kind(name: &str) -> Result<PolicyKind, Box<dyn Error>> {
    if name == "rlpm" {
        return Ok(PolicyKind::Rl);
    }
    if name == "rlpm-hw" {
        return Ok(PolicyKind::RlHw);
    }
    GovernorKind::SIX_BASELINES
        .into_iter()
        .find(|k| k.name() == name)
        .map(PolicyKind::Baseline)
        .ok_or_else(|| {
            ParseArgsError(format!(
                "unknown policy {name:?} (performance | powersave | ondemand | conservative | interactive | schedutil | rlpm | rlpm-hw)"
            ))
            .into()
        })
}

/// Applies the `--cache-dir DIR` / `--no-cache` flags. Commands that
/// train RL policies or run experiment cells reuse cached results from
/// `target/rlpm-cache` by default; cached results are byte-identical to
/// recomputed ones, so `--no-cache` only changes speed.
fn configure_cache(inv: &Invocation) {
    if inv.has("no-cache") {
        experiments::cache::configure(None);
        return;
    }
    let dir = inv
        .flags
        .get("cache-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(experiments::cache::default_dir);
    experiments::cache::configure(Some(dir));
}

/// Applies the `--max-retries N` supervision knob: how many times a
/// panicking experiment cell is retried (with bounded backoff) before it
/// is quarantined. See `experiments::set_max_retries`.
fn configure_supervision(inv: &Invocation) -> CmdResult {
    experiments::set_max_retries(inv.flag_or("max-retries", experiments::max_retries())?);
    Ok(())
}

/// Writes the process-wide metrics snapshot to `--metrics-out FILE` when
/// the flag is present. Commands that simulate call this last, so the
/// snapshot covers everything the invocation did.
fn write_metrics_out(inv: &Invocation) -> CmdResult {
    let Some(path) = inv.flags.get("metrics-out") else {
        return Ok(());
    };
    if !simkit::obs::enabled() {
        eprintln!(
            "warning: this rlpm-sim was built without the `obs` feature; \
             {path} will contain no metrics"
        );
    }
    let snap = simkit::obs::snapshot();
    std::fs::write(path, snap.to_csv())
        .map_err(|e| simkit::trace::WriteError::new(path.as_str(), e))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

fn print_metrics(label: &str, m: &RunMetrics) {
    println!("=== {label} ===");
    println!(
        "energy            : {:.3} J ({:.3} W average)",
        m.energy_j, m.avg_power_w
    );
    println!("energy per QoS    : {}", fmt_f64(m.energy_per_qos));
    println!(
        "QoS               : {:.2}% delivered, {} violations, {}/{} on time",
        m.qos.qos_ratio() * 100.0,
        m.qos.violations,
        m.qos.on_time,
        m.qos.completed
    );
    println!("DVFS transitions  : {}", m.transitions);
    if m.idle_collapsed_core_s > 0.0 || m.idle_gated_core_s > 0.0 {
        println!(
            "cpuidle residency : {:.2} core-s gated, {:.2} core-s collapsed",
            m.idle_gated_core_s, m.idle_collapsed_core_s
        );
    }
}

/// `run <scenario> <policy> [--secs N] [--seed N] [--soc P] [--trace] [--cache-dir DIR] [--no-cache] [--metrics-out FILE]`
pub fn cmd_run(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&[
        "secs",
        "seed",
        "soc",
        "trace",
        "cache-dir",
        "no-cache",
        "metrics-out",
    ])?;
    configure_cache(inv);
    let scenario_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("video");
    let policy_name = inv.positional.get(1).map(String::as_str).unwrap_or("rlpm");
    let secs: u64 = inv.flag_or("secs", 30)?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;

    let soc_cfg = soc_config(&soc_name)?;
    let kind = scenario_kind(scenario_name)?;
    let policy = policy_kind(policy_name)?;
    eprintln!("building {policy_name} (RL variants train first) ...");
    let mut governor = policy.build_trained(&soc_cfg, kind, TrainingProtocol::default(), seed);
    let mut soc = Soc::new(soc_cfg)?;
    let mut scenario = kind.build(seed.wrapping_add(1));
    let mut config = RunConfig::seconds(secs);
    if inv.has("trace") {
        config = config.with_trace();
    }
    let metrics = run(&mut soc, scenario.as_mut(), governor.as_mut(), config);
    if let Some(trace) = &metrics.trace {
        print!("{}", trace.to_csv());
    }
    print_metrics(
        &format!("{scenario_name} / {policy_name} for {secs}s"),
        &metrics,
    );
    write_metrics_out(inv)
}

/// `fleet <scenario> <policy> [--lanes N] [--secs N] [--seed N] [--soc P] [--cache-dir DIR] [--no-cache] [--metrics-out FILE]`
///
/// Simulates a whole population of identical devices in one batched
/// engine ([`soc::DeviceBatch`]): every lane runs the same scenario
/// kind and policy but its own arrival stream (per-lane seeds), and
/// fully-idle lanes are parked and fast-forwarded together. RL variants
/// train once (the fleet ships one policy); per-lane results are
/// bit-identical to running each device alone.
pub fn cmd_fleet(inv: &Invocation) -> CmdResult {
    use experiments::{run_batch, BatchLane};
    use soc::DeviceBatch;

    inv.allow_flags(&[
        "lanes",
        "secs",
        "seed",
        "soc",
        "fault-scale",
        "max-retries",
        "fail-on-quarantine",
        "cache-dir",
        "no-cache",
        "metrics-out",
    ])?;
    configure_cache(inv);
    configure_supervision(inv)?;
    let scenario_name = inv.positional.first().map(String::as_str).unwrap_or("idle");
    let policy_name = inv
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("ondemand");
    let lanes_n: usize = inv.flag_or("lanes", 256)?;
    let secs: u64 = inv.flag_or("secs", 60)?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
    if lanes_n == 0 {
        return Err(ParseArgsError("--lanes must be at least 1".into()).into());
    }
    // The fleet path wires no per-lane fault harness, so a fault request
    // must fail loudly instead of silently simulating fault-free; scale
    // 0 is accepted and bit-identical to omitting the flag.
    experiments::ensure_fleet_faults_supported(inv.flag_or("fault-scale", 0.0)?)?;

    let soc_cfg = soc_config(&soc_name)?;
    let kind = scenario_kind(scenario_name)?;
    let policy = policy_kind(policy_name)?;
    eprintln!("building {lanes_n} x {policy_name} (RL variants train first) ...");
    let mut batch = DeviceBatch::new(
        (0..lanes_n)
            .map(|_| Soc::new(soc_cfg.clone()))
            .collect::<Result<Vec<_>, _>>()?,
    )?;
    let mut lanes: Vec<BatchLane> = (0..lanes_n as u64)
        .map(|i| BatchLane {
            scenario: kind.build(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i)),
            governor: policy.build_trained(&soc_cfg, kind, TrainingProtocol::default(), seed),
            faults: None,
        })
        .collect();

    let start = std::time::Instant::now();
    let metrics = run_batch(&mut batch, &mut lanes, RunConfig::seconds(secs));
    let wall = start.elapsed().as_secs_f64();

    let total_energy: f64 = metrics.iter().map(|m| m.energy_j).sum();
    let total_violations: u64 = metrics.iter().map(|m| m.qos.violations).sum();
    let total_transitions: u64 = metrics.iter().map(|m| m.transitions).sum();
    let mean_qos =
        metrics.iter().map(|m| m.qos.qos_ratio()).sum::<f64>() / metrics.len().max(1) as f64;
    let device_secs = (secs * lanes_n as u64) as f64;

    println!("=== fleet: {lanes_n} x {scenario_name} / {policy_name} for {secs}s ===");
    println!(
        "simulated         : {device_secs:.0} device-seconds in {wall:.2} s wall ({:.0} dev-s/s)",
        if wall > 0.0 { device_secs / wall } else { 0.0 }
    );
    println!(
        "energy            : {:.3} J total, {:.3} J mean per device",
        total_energy,
        total_energy / metrics.len().max(1) as f64
    );
    println!(
        "QoS               : {:.2}% mean delivered, {total_violations} violations fleet-wide",
        mean_qos * 100.0
    );
    println!("DVFS transitions  : {total_transitions} fleet-wide");
    write_metrics_out(inv)
}

/// `train <scenario> [--episodes N] [--episode-secs N] [--seed N] [--soc P] --out FILE`
pub fn cmd_train(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["episodes", "episode-secs", "seed", "soc", "out"])?;
    let scenario_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("mixed");
    let episodes: u32 = inv.flag_or("episodes", 100)?;
    let episode_secs: u64 = inv.flag_or("episode-secs", 30)?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
    let out = inv.required_flag("out")?;

    let soc_cfg = soc_config(&soc_name)?;
    let kind = scenario_kind(scenario_name)?;
    eprintln!("training on {scenario_name}: {episodes} episodes x {episode_secs}s ...");
    let policy = experiments::train_rl_governor(
        &soc_cfg,
        kind,
        TrainingProtocol {
            episodes,
            episode_secs,
        },
        seed,
    );
    let bytes = persist::save_policy(&policy);
    std::fs::write(out, &bytes)?;
    println!(
        "trained {} updates over {} states; saved {} bytes to {out}",
        policy.agent().updates(),
        policy.config().num_states(),
        bytes.len()
    );
    Ok(())
}

/// `eval <scenario> --policy-file FILE [--secs N] [--seed N] [--soc P] [--metrics-out FILE]`
pub fn cmd_eval(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["policy-file", "secs", "seed", "soc", "metrics-out"])?;
    let scenario_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("mixed");
    let file = inv.required_flag("policy-file")?;
    let secs: u64 = inv.flag_or("secs", 60)?;
    let seed: u64 = inv.flag_or("seed", 43)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;

    let soc_cfg = soc_config(&soc_name)?;
    let kind = scenario_kind(scenario_name)?;
    let bytes = std::fs::read(file)?;
    let mut policy = RlGovernor::new(RlConfig::for_soc(&soc_cfg), seed);
    persist::load_policy(&mut policy, &bytes)?;
    policy.set_frozen(true);

    let mut soc = Soc::new(soc_cfg)?;
    let mut scenario = kind.build(seed);
    let metrics = run(
        &mut soc,
        scenario.as_mut(),
        &mut policy,
        RunConfig::seconds(secs),
    );
    print_metrics(
        &format!("{scenario_name} / saved policy for {secs}s"),
        &metrics,
    );
    write_metrics_out(inv)
}

/// `compare <scenario> [--secs N] [--seed N] [--soc P] [--cache-dir DIR] [--no-cache] [--metrics-out FILE]`
pub fn cmd_compare(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&[
        "secs",
        "seed",
        "soc",
        "max-retries",
        "fail-on-quarantine",
        "cache-dir",
        "no-cache",
        "metrics-out",
    ])?;
    configure_cache(inv);
    configure_supervision(inv)?;
    let scenario_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("video");
    let secs: u64 = inv.flag_or("secs", 60)?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;

    let soc_cfg = soc_config(&soc_name)?;
    let kind = scenario_kind(scenario_name)?;
    let mut table = Table::new(
        &format!("{scenario_name} for {secs}s"),
        ["policy", "energy (J)", "energy/QoS", "QoS %", "violations"],
    );
    for policy in PolicyKind::evaluation_set() {
        eprint!("{policy} ... ");
        let mut governor = policy.build_trained(&soc_cfg, kind, TrainingProtocol::default(), seed);
        let mut soc = Soc::new(soc_cfg.clone())?;
        let mut scenario = kind.build(seed.wrapping_add(1));
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig::seconds(secs),
        );
        eprintln!("done");
        table.push([
            policy.name().to_owned(),
            fmt_f64(m.energy_j),
            fmt_f64(m.energy_per_qos),
            format!("{:.2}", m.qos.qos_ratio() * 100.0),
            m.qos.violations.to_string(),
        ]);
    }
    println!("\n{}", table.to_markdown());
    write_metrics_out(inv)
}

/// `record <scenario> [--secs N] [--seed N] --out FILE`
pub fn cmd_record(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["secs", "seed", "out"])?;
    let scenario_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("mixed");
    let secs: u64 = inv.flag_or("secs", 60)?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let out = inv.required_flag("out")?;

    let kind = scenario_kind(scenario_name)?;
    let mut scenario = kind.build(seed);
    let trace = RecordedTrace::record(scenario.as_mut(), SimDuration::from_secs(secs));
    std::fs::write(out, trace.to_csv())?;
    println!("recorded {} arrivals over {secs}s to {out}", trace.len());
    Ok(())
}

/// `replay <policy> --trace-file FILE [--scenario NAME] [--secs N] [--soc P] [--metrics-out FILE]`
pub fn cmd_replay(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&[
        "trace-file",
        "scenario",
        "secs",
        "seed",
        "soc",
        "metrics-out",
    ])?;
    let policy_name = inv
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("schedutil");
    let file = inv.required_flag("trace-file")?;
    let seed: u64 = inv.flag_or("seed", 42)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
    // QoS spec comes from the named source scenario (default: mixed).
    let spec_scenario: String = inv.flag_or("scenario", "mixed".to_owned())?;

    let soc_cfg = soc_config(&soc_name)?;
    let spec = scenario_kind(&spec_scenario)?.build(0).qos_spec();
    let csv = std::fs::read_to_string(file)?;
    let mut trace = RecordedTrace::from_csv("replay", spec, &csv)?;
    let trace_secs = trace.duration().as_secs_f64().ceil() as u64 + 1;
    let secs: u64 = inv.flag_or("secs", trace_secs)?;

    let policy = policy_kind(policy_name)?;
    // RL variants train on the spec scenario, then replay frozen.
    let mut governor = policy.build_trained(
        &soc_cfg,
        scenario_kind(&spec_scenario)?,
        TrainingProtocol::default(),
        seed,
    );
    let mut soc = Soc::new(soc_cfg)?;
    let metrics = run(
        &mut soc,
        &mut trace,
        governor.as_mut(),
        RunConfig::seconds(secs),
    );
    print_metrics(
        &format!("replay({file}) / {policy_name} for {secs}s"),
        &metrics,
    );
    write_metrics_out(inv)
}

/// `latency [--soc P] [--metrics-out FILE]` — the E4 ladder.
pub fn cmd_latency(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["soc", "metrics-out"])?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
    let soc_cfg = soc_config(&soc_name)?;
    let ladder = experiments::e4_decision_latency::ladder(&soc_cfg);
    println!(
        "{}",
        experiments::e4_decision_latency::ladder_table(&ladder).to_markdown()
    );
    println!(
        "up to {:.1}x compute-only, {:.2}x average end-to-end",
        ladder.max_speedup, ladder.avg_speedup
    );
    write_metrics_out(inv)
}

/// `e9 [--scenario NAME] [--fault-seed N] [--soc P] [--out-dir DIR] [--quick] [--metrics-out FILE]`
/// — the resilience sweep under injected faults.
pub fn cmd_e9(inv: &Invocation) -> CmdResult {
    use experiments::e9_fault_resilience::{run_e9, E9Config};

    inv.allow_flags(&[
        "scenario",
        "fault-seed",
        "soc",
        "out-dir",
        "quick",
        "max-retries",
        "fail-on-quarantine",
        "cache-dir",
        "no-cache",
        "metrics-out",
    ])?;
    configure_cache(inv);
    configure_supervision(inv)?;
    let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
    let soc_cfg = soc_config(&soc_name)?;
    let mut config = if inv.has("quick") {
        E9Config::quick()
    } else {
        E9Config::default()
    };
    let scenario_name: String = inv.flag_or("scenario", config.scenario.name().to_owned())?;
    config.scenario = scenario_kind(&scenario_name)?;
    config.fault_seed = inv.flag_or("fault-seed", config.fault_seed)?;

    eprintln!(
        "E9 resilience sweep on {scenario_name}: {} arms x {} fault multipliers x {} seeds \
         (fault seed {}) ...",
        config.arms.len(),
        config.multipliers.len(),
        config.seeds.len(),
        config.fault_seed
    );
    let result = run_e9(&soc_cfg, &config);
    println!("{}", result.violations_table().to_markdown());
    println!("{}", result.energy_per_qos_table().to_markdown());
    println!("{}", result.summary_table().to_markdown());

    if let Some(dir) = inv.flags.get("out-dir") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)?;
        result
            .violations_table()
            .write_csv(&dir.join("e9_fault_violations.csv"))?;
        result
            .energy_per_qos_table()
            .write_csv(&dir.join("e9_fault_energy_per_qos.csv"))?;
        result
            .summary_table()
            .write_csv(&dir.join("e9_fault_summary.csv"))?;
        println!("wrote e9_fault_*.csv to {}", dir.display());
    }
    write_metrics_out(inv)
}

/// `trace <scenario> [--secs N] [--seed N] [--soc P] [--format csv|jsonl] [--out FILE] [--metrics-out FILE]`
/// — per-epoch decision trace of the RL policy: state index, explore vs
/// greedy, chosen action, reward and TD correction, one row per epoch.
pub fn cmd_trace(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["secs", "seed", "soc", "format", "out", "metrics-out"])?;
    if !simkit::obs::enabled() {
        return Err(ParseArgsError(
            "this rlpm-sim was built without the `obs` feature; \
             rebuild with default features to use `trace`"
                .into(),
        )
        .into());
    }
    {
        use rlpm::{DecisionSink, TraceFormat};

        let scenario_name = inv
            .positional
            .first()
            .map(String::as_str)
            .unwrap_or("video");
        let secs: u64 = inv.flag_or("secs", 30)?;
        let seed: u64 = inv.flag_or("seed", 42)?;
        let soc_name: String = inv.flag_or("soc", "xu3".to_owned())?;
        let format = match inv.flag_or("format", "csv".to_owned())?.as_str() {
            "csv" => TraceFormat::Csv,
            "jsonl" => TraceFormat::Jsonl,
            other => {
                return Err(
                    ParseArgsError(format!("unknown --format {other:?} (csv | jsonl)")).into(),
                )
            }
        };
        let soc_cfg = soc_config(&soc_name)?;
        let kind = scenario_kind(scenario_name)?;
        eprintln!("training rlpm before the traced run ...");
        let mut policy =
            experiments::train_rl_governor(&soc_cfg, kind, TrainingProtocol::default(), seed);
        let to_file = inv.flags.get("out");
        let sink = match to_file {
            Some(path) => DecisionSink::new(std::fs::File::create(path)?, format),
            None => DecisionSink::new(std::io::stdout(), format),
        };
        policy.set_decision_sink(Some(sink.clone()));
        let mut soc = Soc::new(soc_cfg)?;
        let mut scenario = kind.build(seed.wrapping_add(1));
        let metrics = run(
            &mut soc,
            scenario.as_mut(),
            &mut policy,
            RunConfig::seconds(secs),
        );
        policy.set_decision_sink(None);
        let records = sink.finish()?;
        eprintln!(
            "traced {records} decisions over {} epochs of {scenario_name}",
            metrics.epochs
        );
        // With the trace on stdout, the run summary would corrupt it, so
        // the summary only prints when the trace went to a file.
        if to_file.is_some() {
            print_metrics(
                &format!("{scenario_name} / rlpm traced for {secs}s"),
                &metrics,
            );
        }
        write_metrics_out(inv)
    }
}

/// The socket `serve` binds and `client` connects to when `--socket` is
/// not given.
fn default_socket_path() -> std::path::PathBuf {
    std::env::temp_dir().join("rlpm-serve.sock")
}

/// `serve [--socket PATH | --stdio] [--cache-dir DIR] [--no-cache] [--max-retries N]`
///
/// Starts the persistent JSON-lines simulation service (`rlpm-serve`
/// crate; wire format in `PROTOCOL.md`). The server runs until a client
/// sends a `shutdown` request. Requests are deduped through the same
/// content-addressed cache the CLI uses, so a warm server answers
/// repeated evaluation requests without simulating.
pub fn cmd_serve(inv: &Invocation) -> CmdResult {
    inv.allow_flags(&["socket", "stdio", "cache-dir", "no-cache", "max-retries"])?;
    configure_cache(inv);
    configure_supervision(inv)?;
    experiments::register_harness_metrics();
    if inv.has("stdio") {
        if inv.flags.contains_key("socket") {
            return Err(
                ParseArgsError("--stdio and --socket are mutually exclusive".into()).into(),
            );
        }
        let service = rlpm_serve::Service::new();
        rlpm_serve::serve_stdio(&service)?;
        return Ok(());
    }
    let path = inv
        .flags
        .get("socket")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_socket_path);
    let server = rlpm_serve::Server::bind(&path)?;
    eprintln!(
        "rlpm-serve listening on {} (protocol v{}; send {{\"type\":\"shutdown\"}} to stop)",
        path.display(),
        rlpm_serve::proto::PROTOCOL_VERSION
    );
    server.run()?;
    eprintln!("rlpm-serve stopped");
    Ok(())
}

/// `client [REQUEST] [--socket PATH] [--request JSON] [--out FILE] [--quiet] [--fail-on-quarantine]`
///
/// Round-trips one request to a running server: events go to stderr
/// (suppressed by `--quiet`), the terminal response to stdout. With
/// `--out FILE` the payload's `csv` field is written to the file
/// instead — the serve-vs-CLI byte-identity smoke relies on this. A
/// `quarantined` server error maps to the same exit codes as a local
/// quarantined run (4, or 2 with `--fail-on-quarantine`); any other
/// server error exits 2.
pub fn cmd_client(inv: &Invocation) -> CmdResult {
    use rlpm_serve::json::Value as Json;

    inv.allow_flags(&["socket", "request", "out", "quiet", "fail-on-quarantine"])?;
    let path = inv
        .flags
        .get("socket")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_socket_path);
    let request = inv
        .flags
        .get("request")
        .or_else(|| inv.positional.first())
        .cloned()
        .unwrap_or_else(|| "{\"type\":\"status\"}".to_string());
    let quiet = inv.has("quiet");
    let response = rlpm_serve::client::request_over_socket(&path, &request, |event| {
        if !quiet {
            eprintln!("{}", event.render());
        }
    })?;
    if response.get("type").and_then(Json::as_str) == Some("error") {
        let code = response.get("code").and_then(Json::as_str).unwrap_or("?");
        let message = response
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("(no message)");
        if code == "quarantined" {
            let cells = response
                .get("payload")
                .and_then(|p| p.get("cells"))
                .and_then(Json::as_u64)
                .unwrap_or(0) as usize;
            return Err(experiments::QuarantineError { cells }.into());
        }
        return Err(ParseArgsError(format!("server error ({code}): {message}")).into());
    }
    if let Some(out) = inv.flags.get("out") {
        let csv = response
            .get("payload")
            .and_then(|p| p.get("csv"))
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ParseArgsError("--out needs a response payload with a \"csv\" field".into())
            })?;
        std::fs::write(out, csv)?;
        eprintln!("wrote {} bytes to {out}", csv.len());
    } else {
        println!("{}", response.render());
    }
    Ok(())
}

/// `help`
pub fn cmd_help() -> CmdResult {
    println!(
        "rlpm-sim — MPSoC power-management simulator (RL DVFS policy reproduction)

USAGE:
  rlpm-sim run      <scenario> <policy> [--secs N] [--seed N] [--soc P] [--trace]
  rlpm-sim fleet    <scenario> <policy> [--lanes N] [--secs N] [--seed N] [--soc P] [--fault-scale F]
  rlpm-sim compare  <scenario> [--secs N] [--seed N] [--soc P]
                    (run/fleet/compare/e9 also take [--cache-dir DIR] [--no-cache];
                     fleet/compare/e9 also take [--max-retries N] [--fail-on-quarantine])
  rlpm-sim train    <scenario> --out FILE [--episodes N] [--episode-secs N] [--seed N] [--soc P]
  rlpm-sim eval     <scenario> --policy-file FILE [--secs N] [--seed N] [--soc P]
  rlpm-sim record   <scenario> --out FILE [--secs N] [--seed N]
  rlpm-sim replay   <policy> --trace-file FILE [--scenario NAME] [--secs N] [--soc P]
  rlpm-sim latency  [--soc P]
  rlpm-sim e9       [--scenario NAME] [--fault-seed N] [--soc P] [--out-dir DIR] [--quick]
  rlpm-sim trace    <scenario> [--secs N] [--seed N] [--soc P] [--format csv|jsonl] [--out FILE]
  rlpm-sim serve    [--socket PATH | --stdio] [--cache-dir DIR] [--no-cache] [--max-retries N]
  rlpm-sim client   [REQUEST] [--socket PATH] [--request JSON] [--out FILE] [--quiet]
  rlpm-sim help

SCENARIOS: video web gaming audio camera video-call navigation app-launch idle mixed
           (plus standby — no arrivals at all — for fleet sweeps)
POLICIES:  performance powersave ondemand conservative interactive schedutil rlpm rlpm-hw
SOC PRESETS (--soc): xu3 (default) | xu3-cstates | symmetric

fleet steps every lane in one batched engine (sleeping devices are
fast-forwarded together); per-lane results stay bit-identical to
running each device alone.

Simulating commands also accept --metrics-out FILE to dump the process-wide
observability snapshot (counters, gauges, spans, histograms) as CSV.

run/compare/e9 reuse trained policies and evaluated cells from a
content-addressed cache (default target/rlpm-cache); cached results are
byte-identical to recomputed ones. --no-cache disables it, --cache-dir
moves it.

Experiment sweeps are supervised: a panicking cell is retried
(--max-retries N, default 2) and then quarantined; a quarantined run
prints a report and exits 4 (2 with --fail-on-quarantine). fleet has no
per-lane fault harness, so --fault-scale must be 0; use e9 for fault
studies.

serve starts the persistent JSON-lines service (wire format in
PROTOCOL.md; default socket <tmp>/rlpm-serve.sock) and client
round-trips one request to it — events on stderr, the response on
stdout, or the payload's csv field to --out FILE."
    );
    Ok(())
}

fn run_command(inv: &Invocation) -> CmdResult {
    match inv.command.as_str() {
        "run" => cmd_run(inv),
        "fleet" => cmd_fleet(inv),
        "train" => cmd_train(inv),
        "eval" => cmd_eval(inv),
        "compare" => cmd_compare(inv),
        "record" => cmd_record(inv),
        "replay" => cmd_replay(inv),
        "latency" => cmd_latency(inv),
        "e9" => cmd_e9(inv),
        "trace" => cmd_trace(inv),
        "serve" => cmd_serve(inv),
        "client" => cmd_client(inv),
        "help" => cmd_help(),
        other => Err(ParseArgsError(format!(
            "unknown command {other:?} (one of: {}); try `rlpm-sim help`",
            crate::args::COMMANDS.join(", ")
        ))
        .into()),
    }
}

/// Dispatches a parsed invocation under quarantine supervision: an
/// experiment sweep whose cells gave up after retries raises one summary
/// panic, which is converted here into a typed
/// [`experiments::QuarantineError`] after printing the quarantine
/// report — the command "completes with quarantine" instead of crashing.
/// `main` maps that error to exit code 4 (or 2 with
/// `--fail-on-quarantine`). Panics with no quarantined cells are real
/// bugs and propagate unchanged.
pub fn dispatch(inv: &Invocation) -> CmdResult {
    experiments::clear_quarantine();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_command(inv)));
    let quarantined = experiments::quarantine_report();
    if quarantined.is_empty() {
        return match outcome {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        };
    }
    eprintln!(
        "quarantine report: {} cell(s) gave up after retries:",
        quarantined.len()
    );
    for record in &quarantined {
        eprintln!("  {record}");
    }
    let quarantine_error = experiments::QuarantineError {
        cells: quarantined.len(),
    };
    match outcome {
        // The command survived (partial results); still fail typed so
        // scripts never mistake a quarantined run for a clean one.
        Ok(Ok(())) | Err(_) => Err(quarantine_error.into()),
        // A prior error outranks the quarantine summary.
        Ok(Err(e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    #[test]
    fn name_resolution() {
        assert!(scenario_kind("video").is_ok());
        assert!(scenario_kind("navigation").is_ok());
        assert!(scenario_kind("nope").is_err());
        assert!(policy_kind("schedutil").is_ok());
        assert!(policy_kind("rlpm").is_ok());
        assert!(policy_kind("rlpm-hw").is_ok());
        assert!(policy_kind("turbo").is_err());
        assert!(soc_config("xu3").is_ok());
        assert!(soc_config("xu3-cstates").is_ok());
        assert!(soc_config("zen5").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        let inv = parse(["frobnicate"]).unwrap();
        let err = dispatch(&inv).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        // The error lists the real catalog, which must include the
        // observability subcommand.
        assert!(err.to_string().contains("trace"));
        assert!(crate::args::COMMANDS.contains(&"trace"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn trace_command_writes_decision_trace_and_metrics() {
        let dir = std::env::temp_dir().join("rlpm-sim-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("decisions.csv");
        let metrics_path = dir.join("metrics.csv");
        let inv = parse([
            "trace".to_owned(),
            "audio".to_owned(),
            "--secs".to_owned(),
            "5".to_owned(),
            "--out".to_owned(),
            trace_path.to_str().unwrap().to_owned(),
            "--metrics-out".to_owned(),
            metrics_path.to_str().unwrap().to_owned(),
        ])
        .unwrap();
        dispatch(&inv).expect("trace");
        let csv = std::fs::read_to_string(&trace_path).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("epoch,state,explored,action,reward,q_delta")
        );
        assert!(lines.count() >= 100, "5s of 20ms epochs is 250 decisions");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.starts_with("metric,kind,value"), "{metrics}");
        assert!(metrics.contains("rlpm.decisions"), "{metrics}");
        assert!(metrics.contains("soc.epochs"), "{metrics}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_command_runs_a_small_batch() {
        let inv = parse([
            "fleet",
            "standby",
            "powersave",
            "--lanes",
            "4",
            "--secs",
            "2",
            "--no-cache",
        ])
        .unwrap();
        dispatch(&inv).expect("fleet");
        // Lane count must be validated before any simulation starts.
        let inv = parse(["fleet", "idle", "ondemand", "--lanes", "0"]).unwrap();
        assert!(dispatch(&inv).unwrap_err().to_string().contains("--lanes"));
    }

    #[test]
    fn unknown_flag_is_reported_before_running() {
        let inv = parse(["run", "video", "rlpm", "--sexs", "1"]).unwrap();
        let err = dispatch(&inv).unwrap_err();
        assert!(err.to_string().contains("--sexs"));
    }

    #[test]
    fn latency_command_runs() {
        let inv = parse(["latency"]).unwrap();
        dispatch(&inv).expect("latency prints the ladder");
    }

    #[test]
    fn e9_quick_sweep_writes_fault_csvs() {
        let dir = std::env::temp_dir().join("rlpm-sim-test-e9");
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap().to_owned();
        let inv = parse([
            "e9".to_owned(),
            "--quick".to_owned(),
            "--out-dir".to_owned(),
            dir_str,
        ])
        .unwrap();
        dispatch(&inv).expect("e9 quick sweep");
        for name in [
            "e9_fault_violations.csv",
            "e9_fault_energy_per_qos.csv",
            "e9_fault_summary.csv",
        ] {
            let csv = std::fs::read_to_string(dir.join(name)).expect(name);
            assert!(csv.contains("rlpm + watchdog"), "{name}: {csv}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_then_replay_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("rlpm-sim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audio.trace.csv");
        let path_str = path.to_str().unwrap().to_owned();

        let inv = parse([
            "record".to_owned(),
            "audio".to_owned(),
            "--secs".to_owned(),
            "3".to_owned(),
            "--out".to_owned(),
            path_str.clone(),
        ])
        .unwrap();
        dispatch(&inv).expect("record");

        let inv = parse([
            "replay".to_owned(),
            "powersave".to_owned(),
            "--trace-file".to_owned(),
            path_str,
            "--scenario".to_owned(),
            "audio".to_owned(),
        ])
        .unwrap();
        dispatch(&inv).expect("replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_then_eval_round_trips_a_policy_file() {
        let dir = std::env::temp_dir().join("rlpm-sim-test-policy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.bin");
        let path_str = path.to_str().unwrap().to_owned();

        let inv = parse([
            "train".to_owned(),
            "audio".to_owned(),
            "--episodes".to_owned(),
            "2".to_owned(),
            "--episode-secs".to_owned(),
            "5".to_owned(),
            "--out".to_owned(),
            path_str.clone(),
        ])
        .unwrap();
        dispatch(&inv).expect("train");

        let inv = parse([
            "eval".to_owned(),
            "audio".to_owned(),
            "--policy-file".to_owned(),
            path_str,
            "--secs".to_owned(),
            "5".to_owned(),
        ])
        .unwrap();
        dispatch(&inv).expect("eval");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Units of work executed by the SoC.
//!
//! A [`Job`] is a burst of computation with a QoS deadline — a video frame
//! to decode, a UI event to handle, a chunk of a page load. Work is
//! expressed in *reference instructions*: a core retires
//! `frequency · IPC` reference instructions per second, so the same job
//! takes longer on a LITTLE core than on a big one, matching how
//! big.LITTLE schedulers reason about capacity.

use simkit::SimTime;

/// Unique identifier of a job within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Scheduling class of a job, used as the placement affinity hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-critical heavy work (frame rendering, decode) — prefers the
    /// big cluster.
    Heavy,
    /// Ordinary interactive work — placed by load.
    Normal,
    /// Light periodic work (audio buffers, sensors) — prefers LITTLE.
    Light,
    /// Throughput-only background work — LITTLE, lowest priority.
    Background,
}

impl JobClass {
    /// All classes, for exhaustive sweeps in tests and benches.
    pub const ALL: [JobClass; 4] = [
        JobClass::Heavy,
        JobClass::Normal,
        JobClass::Light,
        JobClass::Background,
    ];
}

/// A burst of computation with a deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Work in reference instructions.
    pub work: u64,
    /// QoS deadline: the instant by which the job should complete.
    pub deadline: SimTime,
    /// Placement affinity hint.
    pub class: JobClass,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `work` is zero — zero-work jobs would complete "before"
    /// they run and break completion-time interpolation.
    pub fn new(id: u64, work: u64, deadline: SimTime, class: JobClass) -> Self {
        assert!(work > 0, "job work must be positive");
        Job {
            id: JobId(id),
            work,
            deadline,
            class,
        }
    }
}

/// A finished job with its completion timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedJob {
    /// The job's id.
    pub id: JobId,
    /// The job's deadline.
    pub deadline: SimTime,
    /// When the last instruction retired.
    pub completed_at: SimTime,
    /// The job's class.
    pub class: JobClass,
    /// The job's work, for per-class accounting.
    pub work: u64,
}

impl CompletedJob {
    /// Whether the job finished by its deadline.
    pub fn met_deadline(&self) -> bool {
        self.completed_at <= self.deadline
    }

    /// How late the job was (zero when on time).
    pub fn tardiness(&self) -> simkit::SimDuration {
        self.completed_at.saturating_duration_since(self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn job_construction() {
        let j = Job::new(3, 1_000, SimTime::from_millis(16), JobClass::Heavy);
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.work, 1_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_rejected() {
        Job::new(0, 0, SimTime::ZERO, JobClass::Light);
    }

    #[test]
    fn deadline_accounting() {
        let on_time = CompletedJob {
            id: JobId(1),
            deadline: SimTime::from_millis(16),
            completed_at: SimTime::from_millis(10),
            class: JobClass::Heavy,
            work: 100,
        };
        assert!(on_time.met_deadline());
        assert_eq!(on_time.tardiness(), SimDuration::ZERO);

        let late = CompletedJob {
            completed_at: SimTime::from_millis(20),
            ..on_time
        };
        assert!(!late.met_deadline());
        assert_eq!(late.tardiness(), SimDuration::from_millis(4));
    }

    #[test]
    fn exactly_on_deadline_counts_as_met() {
        let j = CompletedJob {
            id: JobId(1),
            deadline: SimTime::from_millis(16),
            completed_at: SimTime::from_millis(16),
            class: JobClass::Normal,
            work: 1,
        };
        assert!(j.met_deadline());
    }

    #[test]
    fn display_of_job_id() {
        assert_eq!(JobId(7).to_string(), "job#7");
    }
}

//! Serve-path load measurement: requests per wall-second against an
//! in-process `rlpm-serve` server, cold (empty result cache) versus warm
//! (every sweep cell answered from disk), plus warm-tail latency.
//!
//! The measured request is the cached E1 sweep (`eval` with the quick
//! configuration) — the protocol path heavy traffic actually exercises:
//! the first request prices the whole sweep, every later identical
//! request is a content-addressed cache hit. Results are persisted to
//! `BENCH_serve.json` by the `serve-bench` binary; the JSON is emitted
//! and parsed with the same rigid hand-rolled conventions as
//! `BENCH_simrate.json` (the workspace builds offline, without serde).

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use rlpm_serve::client::request_over_socket;
use rlpm_serve::json::Value;
use rlpm_serve::Server;

use crate::simrate::{extract_number, extract_object, json_num};

/// Shape of one serve-load measurement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLoadConfig {
    /// Concurrent client connections in the warm phase.
    pub connections: u32,
    /// Total warm-phase requests, spread across the connections.
    pub warm_requests: u32,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            connections: 4,
            warm_requests: 32,
        }
    }
}

impl ServeLoadConfig {
    /// A reduced pass for CI smoke runs.
    pub fn quick() -> Self {
        ServeLoadConfig {
            connections: 2,
            warm_requests: 8,
        }
    }
}

/// One measured phase: request count, wall time, and derived rates.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Requests completed in the phase.
    pub requests: u32,
    /// Wall-clock seconds for the whole phase.
    pub wall_s: f64,
    /// Requests per wall-second.
    pub rps: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
}

impl PhaseStats {
    fn from_latencies(latencies: &mut [f64], wall_s: f64) -> PhaseStats {
        latencies.sort_by(|a, b| a.total_cmp(b));
        let n = latencies.len();
        let idx = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
        let p99_s = latencies.get(idx).copied().unwrap_or(0.0);
        let wall_s = wall_s.max(1e-9);
        PhaseStats {
            requests: n as u32,
            wall_s,
            rps: n as f64 / wall_s,
            p99_ms: p99_s * 1000.0,
        }
    }
}

/// The persisted report: cold and warm phases plus the headline ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Configuration of the measurement pass.
    pub config: ServeLoadConfig,
    /// The first request against an empty cache (prices the whole sweep).
    pub cold: PhaseStats,
    /// Identical requests once every cell is cached.
    pub warm: PhaseStats,
}

impl ServeReport {
    /// Warm-over-cold throughput ratio — the number the CI gate holds.
    pub fn warm_over_cold(&self) -> f64 {
        self.warm.rps / self.cold.rps.max(1e-12)
    }

    /// Serialises the report as JSON (schema 1).
    pub fn to_json(&self) -> String {
        let phase = |p: &PhaseStats| {
            format!(
                "{{\n    \"requests\": {},\n    \"wall_s\": {},\n    \"rps\": {},\n    \"p99_ms\": {}\n  }}",
                p.requests,
                json_num(p.wall_s),
                json_num(p.rps),
                json_num(p.p99_ms)
            )
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str("  \"unit\": \"requests per wall-second, cached E1 eval\",\n");
        s.push_str("  \"config\": {\n");
        s.push_str(&format!(
            "    \"connections\": {},\n",
            self.config.connections
        ));
        s.push_str(&format!(
            "    \"warm_requests\": {}\n",
            self.config.warm_requests
        ));
        s.push_str("  },\n");
        s.push_str(&format!("  \"cold\": {},\n", phase(&self.cold)));
        s.push_str(&format!("  \"warm\": {},\n", phase(&self.warm)));
        s.push_str(&format!(
            "  \"warm_over_cold\": {}\n",
            json_num(self.warm_over_cold())
        ));
        s.push_str("}\n");
        s
    }

    /// Parses a report previously written by [`ServeReport::to_json`].
    /// Returns `None` when the text does not look like one.
    pub fn from_json(text: &str) -> Option<ServeReport> {
        if extract_number(text, "schema")? != 1.0 {
            return None;
        }
        let config_block = extract_object(text, "config")?;
        let phase = |name: &str| -> Option<PhaseStats> {
            let block = extract_object(text, name)?;
            Some(PhaseStats {
                requests: extract_number(&block, "requests")? as u32,
                wall_s: extract_number(&block, "wall_s")?,
                rps: extract_number(&block, "rps")?,
                p99_ms: extract_number(&block, "p99_ms")?,
            })
        };
        Some(ServeReport {
            config: ServeLoadConfig {
                connections: extract_number(&config_block, "connections")? as u32,
                warm_requests: extract_number(&config_block, "warm_requests")? as u32,
            },
            cold: phase("cold")?,
            warm: phase("warm")?,
        })
    }
}

/// The request every phase issues: the quick E1 sweep.
pub const EVAL_REQUEST: &str = "{\"type\":\"eval\",\"experiment\":\"e1\",\"quick\":true}";

fn eval_csv(path: &Path) -> Value {
    let response = request_over_socket(path, EVAL_REQUEST, |_| {}).expect("request round-trips");
    assert_eq!(
        response.get("type").and_then(Value::as_str),
        Some("result"),
        "eval request must succeed, got {response:?}"
    );
    response
        .get("payload")
        .and_then(|p| p.get("csv"))
        .cloned()
        .expect("eval payload carries a csv field")
}

/// Measures cold-versus-warm serve throughput against an in-process
/// server on `socket`.
///
/// The caller is responsible for pointing the result cache at a **fresh**
/// directory first (`experiments::cache::configure`); the cold number is
/// only honest when the first request computes every sweep cell. Every
/// warm response's CSV is asserted identical to the cold one — the
/// requests are priced only because they are provably the same work.
pub fn measure(config: &ServeLoadConfig, socket: &Path) -> ServeReport {
    let server = Server::bind(socket).expect("bind serve socket");
    let server_thread = std::thread::spawn(move || server.run());

    // Cold: one request against the empty cache.
    let start = Instant::now();
    let cold_csv = eval_csv(socket);
    let cold_wall = start.elapsed().as_secs_f64();
    let cold = PhaseStats::from_latencies(&mut [cold_wall], cold_wall);

    // Warm: the same request, spread over concurrent connections.
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let per_connection = config.warm_requests.div_ceil(config.connections.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.connections.max(1) {
            scope.spawn(|| {
                for _ in 0..per_connection {
                    let t = Instant::now();
                    let csv = eval_csv(socket);
                    let dt = t.elapsed().as_secs_f64();
                    assert_eq!(csv, cold_csv, "warm CSV diverged from the cold run");
                    latencies.lock().expect("latency vector lock").push(dt);
                }
            });
        }
    });
    let warm_wall = start.elapsed().as_secs_f64();
    let mut warm_latencies = latencies.into_inner().expect("latency vector lock");
    let warm = PhaseStats::from_latencies(&mut warm_latencies, warm_wall);

    let response = request_over_socket(socket, "{\"type\":\"shutdown\"}", |_| {})
        .expect("shutdown round-trips");
    assert_eq!(
        response.get("type").and_then(Value::as_str),
        Some("result"),
        "shutdown must be acknowledged"
    );
    let join = server_thread.join().expect("server thread exits cleanly");
    join.expect("server run loop exits without io errors");

    ServeReport {
        config: *config,
        cold,
        warm,
    }
}

/// A socket path under the system temp dir, unique to this process.
pub fn scratch_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rlpm-serve-{tag}-{}.sock", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            config: ServeLoadConfig::default(),
            cold: PhaseStats {
                requests: 1,
                wall_s: 4.2,
                rps: 0.238,
                p99_ms: 4200.0,
            },
            warm: PhaseStats {
                requests: 32,
                wall_s: 1.6,
                rps: 20.0,
                p99_ms: 310.5,
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = ServeReport::from_json(&report.to_json()).expect("own output parses");
        assert_eq!(parsed, report);
        assert!(ServeReport::from_json("not json").is_none());
        assert!(ServeReport::from_json("{\"schema\": 9}").is_none());
    }

    #[test]
    fn warm_over_cold_is_a_throughput_ratio() {
        let report = sample();
        assert!((report.warm_over_cold() - 20.0 / 0.238).abs() < 1e-9);
    }

    #[test]
    fn p99_is_the_tail_of_the_sorted_latencies() {
        let mut latencies: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = PhaseStats::from_latencies(&mut latencies, 10.0);
        assert_eq!(stats.requests, 100);
        assert!((stats.p99_ms - 99_000.0).abs() < 1e-6);
        assert!((stats.rps - 10.0).abs() < 1e-9);
        let mut one = vec![0.5];
        let stats = PhaseStats::from_latencies(&mut one, 0.5);
        assert!((stats.p99_ms - 500.0).abs() < 1e-9);
    }

    #[test]
    fn eval_request_line_is_valid_protocol() {
        let parsed = rlpm_serve::json::parse(EVAL_REQUEST).expect("request parses as JSON");
        assert!(rlpm_serve::proto::parse_request(&parsed).is_ok());
    }
}

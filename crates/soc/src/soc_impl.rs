//! The top-level SoC: clusters + scheduler + arrival queue, advanced one
//! DVFS epoch at a time.

use simkit::{obs, EventQueue, SimDuration, SimTime};

use crate::{
    Cluster, ClusterObservation, ClusterReport, CompletedJob, Job, OppLevel, Scheduler, SocConfig,
    SocError,
};

/// Epochs simulated across all [`Soc`] instances in this process.
static EPOCHS: obs::Counter = obs::Counter::new("soc.epochs");
/// Sub-steps advanced (fast-forwarded idle sub-steps included).
static SUBSTEPS: obs::Counter = obs::Counter::new("soc.substeps");
/// Epoch wall energy (J), including the board-base term.
static EPOCH_ENERGY: obs::HistogramMetric =
    obs::HistogramMetric::new("soc.epoch_energy_j", 0.0, 0.5);

/// Per-cluster frequency levels requested by a governor for the next epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRequest {
    /// One OPP level per cluster, indexed by [`crate::ClusterId`].
    pub levels: Vec<OppLevel>,
}

impl LevelRequest {
    /// A request with explicit levels.
    pub fn new(levels: Vec<OppLevel>) -> Self {
        LevelRequest { levels }
    }

    /// Every cluster at its highest OPP.
    pub fn max(config: &SocConfig) -> Self {
        LevelRequest {
            levels: config.clusters.iter().map(|c| c.opps.max_level()).collect(),
        }
    }

    /// Every cluster at its lowest OPP.
    pub fn min(config: &SocConfig) -> Self {
        LevelRequest {
            levels: vec![0; config.clusters.len()],
        }
    }
}

/// What happened during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch start time.
    pub started_at: SimTime,
    /// Epoch end time (= start + epoch length).
    pub ended_at: SimTime,
    /// Per-cluster reports.
    pub clusters: Vec<ClusterReport>,
    /// Total energy including the board-base term (J).
    pub energy_j: f64,
}

impl EpochReport {
    /// Iterates over all jobs completed this epoch, across clusters.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedJob> {
        self.clusters.iter().flat_map(|c| c.completed.iter())
    }

    /// Total jobs still queued at the end of the epoch.
    pub fn queued(&self) -> usize {
        self.clusters.iter().map(|c| c.queued).sum()
    }
}

/// Observation of the whole SoC at an epoch boundary, consumed by
/// governors.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochObservation {
    /// The instant of the boundary.
    pub at: SimTime,
    /// Per-cluster observations.
    pub clusters: Vec<ClusterObservation>,
    /// Energy consumed during the epoch just finished (J).
    pub energy_j: f64,
}

/// A simulated MPSoC.
///
/// See the [crate-level documentation](crate) for the execution model and
/// a usage example.
#[derive(Debug, Clone)]
pub struct Soc {
    config: SocConfig,
    clusters: Vec<Cluster>,
    scheduler: Scheduler,
    arrivals: EventQueue<Job>,
    now: SimTime,
    total_energy_j: f64,
    epochs_run: u64,
    jobs_submitted: u64,
    idle_fast_forward: bool,
}

impl Soc {
    /// Builds a SoC from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SocError`] if the configuration is invalid.
    pub fn new(config: SocConfig) -> Result<Self, SocError> {
        config.validate()?;
        let clusters = config.clusters.iter().cloned().map(Cluster::new).collect();
        Ok(Soc {
            config,
            clusters,
            scheduler: Scheduler::new(),
            arrivals: EventQueue::new(),
            now: SimTime::ZERO,
            total_energy_j: 0.0,
            epochs_run: 0,
            jobs_submitted: 0,
            idle_fast_forward: true,
        })
    }

    /// Enables or disables the idle fast-forward (on by default). The
    /// fast path is bit-identical to stepped execution — this knob exists
    /// so tests can prove that claim by running both ways.
    pub fn set_idle_fast_forward(&mut self, enabled: bool) {
        self.idle_fast_forward = enabled;
    }

    /// The configuration the SoC was built from.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Current simulation time (always an epoch boundary).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The clusters, for inspection.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Total energy consumed since construction (J).
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Number of epochs executed.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Number of jobs submitted.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted
    }

    /// Submits a job arriving now.
    pub fn push_job(&mut self, job: Job) {
        self.schedule_job(self.now, job);
    }

    /// Submits a job arriving at `at` (must not be in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()`.
    pub fn schedule_job(&mut self, at: SimTime, job: Job) {
        assert!(
            at >= self.now,
            "job scheduled in the past: {at} < {}",
            self.now
        );
        self.jobs_submitted += 1;
        self.arrivals.schedule(at, job);
    }

    /// Hotplugs cluster `cluster` to exactly `online` online cores
    /// (the online prefix model: cores `0..online` stay active, the tail
    /// is power-collapsed and its queued work migrates to the survivors).
    /// Returns the previous online count.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCluster`] for an out-of-range cluster index, or
    /// [`SocError::InvalidHotplug`] when `online` is zero or exceeds the
    /// cluster's physical core count.
    pub fn set_cores_online(&mut self, cluster: usize, online: usize) -> Result<usize, SocError> {
        let available = self.clusters.len();
        match self.clusters.get_mut(cluster) {
            Some(c) => c.set_online(online, cluster),
            None => Err(SocError::NoSuchCluster { cluster, available }),
        }
    }

    /// Jobs currently queued on cores (excluding future arrivals).
    pub fn queued_jobs(&self) -> usize {
        self.clusters.iter().map(Cluster::queued_jobs).sum()
    }

    /// Future arrivals not yet dispatched.
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Runs one DVFS epoch with the requested per-cluster levels.
    ///
    /// Levels are applied at the epoch start (incurring transition stalls
    /// and energy where they change), arrivals due within the epoch are
    /// dispatched at sub-step granularity, and the report aggregates
    /// execution, energy and completions.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSocConfig`] if the request has the wrong
    /// arity or [`SocError::LevelOutOfRange`] for a level beyond a
    /// cluster's table.
    pub fn run_epoch(&mut self, request: &LevelRequest) -> Result<EpochReport, SocError> {
        let mut report = EpochReport {
            started_at: SimTime::ZERO,
            ended_at: SimTime::ZERO,
            clusters: Vec::new(),
            energy_j: 0.0,
        };
        self.run_epoch_into(request, &mut report)?;
        Ok(report)
    }

    /// [`Soc::run_epoch`] into a caller-owned report, reusing its buffers.
    ///
    /// In a steady-state epoch loop the per-cluster report slots and their
    /// completed-job pools retain their capacity across calls, so the hot
    /// path performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Soc::run_epoch`]; on error the report contents are
    /// unspecified.
    pub fn run_epoch_into(
        &mut self,
        request: &LevelRequest,
        report: &mut EpochReport,
    ) -> Result<(), SocError> {
        self.apply_levels(request)?;

        let started_at = self.now;
        let substep = self.config.substep;
        let steps = self.config.substeps_per_epoch();
        let _span = obs::span!("soc.run_epoch");

        // xtask-hotpath: begin
        let mut step = 0u64;
        while step < steps {
            // Dispatch arrivals due by the start of this sub-step.
            while let Some((_, job)) = self.arrivals.pop_until(self.now) {
                let (cluster, core) = self.scheduler.place(&self.clusters, &job);
                if let Some(target) = self.clusters.get_mut(cluster) {
                    target.enqueue_on(core, job);
                }
            }

            // Idle fast-forward: with every core quiescent and the next
            // arrival strictly beyond the next `ff − 1` sub-step
            // boundaries, those boundaries would dispatch nothing and
            // execute nothing — batch them per cluster (clusters do not
            // interact between dispatches, so the reorder is exact).
            if self.idle_fast_forward
                && steps - step >= 2
                && self.clusters.iter().all(Cluster::is_quiescent)
            {
                let remaining = steps - step;
                let ff = match self.arrivals.peek_time() {
                    None => remaining,
                    Some(t) => {
                        // `t > self.now` because the dispatch loop above
                        // drained everything due by now. Sub-step `j`
                        // (0-based from here) dispatches arrivals at
                        // `now + j·substep`, so we may skip the checks for
                        // j = 1..ff−1 iff t > now + (ff−1)·substep; the
                        // largest such ff is ⌊(gap−1ns)/substep⌋ + 1.
                        let gap = t - self.now;
                        ((gap - SimDuration::from_nanos(1)) / substep + 1).min(remaining)
                    }
                };
                if ff >= 2 {
                    for cluster in &mut self.clusters {
                        cluster.advance_idle_substeps(substep, ff);
                    }
                    self.now += substep * ff;
                    step += ff;
                    continue;
                }
            }

            for cluster in &mut self.clusters {
                // A quiescent cluster next to a busy one (the common case
                // in light scenarios: one cluster runs the job, the other
                // idles) takes the cheap idle path for this single
                // sub-step — same bits, no per-core execution loop.
                if self.idle_fast_forward && cluster.is_quiescent() {
                    cluster.advance_idle_substeps(substep, 1);
                } else {
                    cluster.advance_substep(self.now, substep);
                }
            }
            self.now += substep;
            step += 1;
        }
        // xtask-hotpath: end

        self.finish_epoch_into(started_at, steps, report);
        Ok(())
    }

    /// The epoch prologue shared by [`Soc::run_epoch_into`] and the
    /// batched fast path: validates the request arity and applies the
    /// per-cluster levels (incurring transition stalls and energy where
    /// they change).
    pub(crate) fn apply_levels(&mut self, request: &LevelRequest) -> Result<(), SocError> {
        if request.levels.len() != self.clusters.len() {
            return Err(SocError::InvalidSocConfig {
                reason: format!(
                    "level request has {} entries for {} clusters",
                    request.levels.len(),
                    self.clusters.len()
                ),
            });
        }
        for (id, (&level, cluster)) in request.levels.iter().zip(&mut self.clusters).enumerate() {
            cluster.set_level(level, id)?;
        }
        Ok(())
    }

    /// The epoch epilogue shared by [`Soc::run_epoch_into`] and the
    /// batched fast path: closes every cluster's accumulators into the
    /// report, adds the board-base energy term and bumps the counters.
    pub(crate) fn finish_epoch_into(
        &mut self,
        started_at: SimTime,
        steps: u64,
        report: &mut EpochReport,
    ) {
        report.started_at = started_at;
        report.ended_at = self.now;
        report
            .clusters
            .resize_with(self.clusters.len(), ClusterReport::default);
        let mut energy_j = 0.0;
        for (cluster, slot) in self.clusters.iter_mut().zip(report.clusters.iter_mut()) {
            cluster.end_epoch_into(slot);
            energy_j += slot.energy_j;
        }
        let energy_j = energy_j + self.config.board_base_w * self.config.epoch.as_secs_f64();
        self.total_energy_j += energy_j;
        self.epochs_run += 1;
        report.energy_j = energy_j;
        EPOCHS.inc();
        SUBSTEPS.add(steps);
        EPOCH_ENERGY.record(energy_j);
    }

    /// Whether the idle fast-forward is enabled (see
    /// [`Soc::set_idle_fast_forward`]).
    pub fn idle_fast_forward_enabled(&self) -> bool {
        self.idle_fast_forward
    }

    /// Whether the next epoch can take the batched idle fast path: every
    /// cluster quiescent with no cpuidle table, fast-forward enabled, and
    /// no arrival due before the epoch's last sub-step boundary — exactly
    /// the condition under which [`Soc::run_epoch_into`] would cover the
    /// whole epoch with one `advance_idle_substeps` call per cluster.
    pub(crate) fn idle_epoch_parkable(&self) -> bool {
        self.idle_fast_forward
            && self.config.substeps_per_epoch() >= 2
            && self
                .clusters
                .iter()
                .all(|c| c.is_quiescent() && c.config().idle.is_none())
            && self.arrivals_clear_of_epoch()
    }

    /// Whether no arrival is due before the next epoch's last sub-step
    /// boundary — the arrival half of the parkable condition, cheap
    /// enough to re-check every epoch while a lane stays parked (the
    /// quiescence half is invariant there: a parked lane dispatches
    /// nothing).
    pub(crate) fn arrivals_clear_of_epoch(&self) -> bool {
        let steps = self.config.substeps_per_epoch();
        match self.arrivals.peek_time() {
            None => true,
            Some(t) => {
                // Mirrors the fast-forward horizon: sub-step `j`
                // dispatches arrivals at `now + j·substep`, so the
                // whole epoch is skippable iff the first arrival lies
                // strictly beyond the last boundary.
                t > self.now
                    && (t - self.now - SimDuration::from_nanos(1)) / self.config.substep + 1
                        >= steps
            }
        }
    }

    /// Parks the SoC: detaches every cluster into an
    /// [`crate::cluster::IdleDomain`] for the batched idle kernel
    /// (appending to `out` in cluster order) and stages the observation
    /// constants. The domains stay resident across epochs until
    /// [`Soc::parked_exit`]; while parked, only [`Soc::parked_commit_epoch`]
    /// advances this SoC.
    pub(crate) fn parked_enter(
        &mut self,
        out: &mut Vec<crate::cluster::IdleDomain>,
        consts: &mut Vec<crate::cluster::ParkedObsConsts>,
    ) {
        let substep = self.config.substep;
        for cluster in &mut self.clusters {
            consts.push(cluster.parked_obs_consts());
            out.push(cluster.idle_batch_begin(substep));
        }
    }

    /// Closes one parked epoch from the kernel-evolved domains: the
    /// resident equivalent of [`Soc::finish_epoch_into`] after the
    /// whole-epoch fast-forward arm of [`Soc::run_epoch_into`], with the
    /// per-cluster epilogue synthesised from the domains (see
    /// [`crate::cluster::synth_parked_report`]) instead of read from the
    /// untouched `Cluster` structs. The energy fold, board-base term and
    /// counters are the same instruction sequence as the scalar path.
    pub(crate) fn parked_commit_epoch(
        &mut self,
        domains: &mut [crate::cluster::IdleDomain],
        report: &mut EpochReport,
    ) {
        let steps = self.config.substeps_per_epoch();
        let started_at = self.now;
        self.now += self.config.substep * steps;
        report.started_at = started_at;
        report.ended_at = self.now;
        report
            .clusters
            .resize_with(self.clusters.len(), ClusterReport::default);
        let mut energy_j = 0.0;
        for (domain, slot) in domains.iter_mut().zip(report.clusters.iter_mut()) {
            crate::cluster::synth_parked_report(domain, steps as u32, slot);
            energy_j += slot.energy_j;
        }
        let energy_j = energy_j + self.config.board_base_w * self.config.epoch.as_secs_f64();
        self.total_energy_j += energy_j;
        self.epochs_run += 1;
        report.energy_j = energy_j;
        EPOCHS.inc();
        SUBSTEPS.add(steps);
        EPOCH_ENERGY.record(energy_j);
    }

    /// Unparks the SoC at an epoch boundary: writes the kernel-evolved
    /// domain state back into the clusters, including the idle residency
    /// owed for the whole stay (`epochs_parked` epochs).
    pub(crate) fn parked_exit(
        &mut self,
        domains: &[crate::cluster::IdleDomain],
        epochs_parked: u64,
    ) {
        let span = self.config.substep * self.config.substeps_per_epoch() * epochs_parked;
        for (cluster, domain) in self.clusters.iter_mut().zip(domains) {
            cluster.idle_batch_restore(domain, span);
        }
    }

    /// Builds the governor-facing observation from an epoch report.
    pub fn observe(&self, report: &EpochReport) -> EpochObservation {
        let mut obs = EpochObservation {
            at: report.ended_at,
            clusters: Vec::new(),
            energy_j: report.energy_j,
        };
        self.observe_into(report, &mut obs);
        obs
    }

    /// [`Soc::observe`] into a caller-owned observation, reusing its
    /// per-cluster buffer.
    pub fn observe_into(&self, report: &EpochReport, obs: &mut EpochObservation) {
        obs.at = report.ended_at;
        obs.energy_j = report.energy_j;
        obs.clusters.clear();
        obs.clusters.extend(
            self.clusters
                .iter()
                .zip(&report.clusters)
                .map(|(cluster, r)| cluster.observe(r.util_avg, r.util_max)),
        );
    }

    /// Resets to a cold, idle SoC at time zero (between training episodes).
    pub fn reset(&mut self) {
        for cluster in &mut self.clusters {
            cluster.reset();
        }
        self.arrivals.reset();
        self.now = SimTime::ZERO;
        self.total_energy_j = 0.0;
        self.epochs_run = 0;
        self.jobs_submitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobClass;

    fn soc() -> Soc {
        Soc::new(SocConfig::tiny_test().unwrap()).unwrap()
    }

    fn xu3() -> Soc {
        Soc::new(SocConfig::odroid_xu3_like().unwrap()).unwrap()
    }

    #[test]
    fn idle_epoch_consumes_base_energy_and_advances_time() {
        let mut s = soc();
        let report = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        assert_eq!(report.started_at, SimTime::ZERO);
        assert_eq!(report.ended_at, SimTime::from_millis(20));
        assert_eq!(s.now(), SimTime::from_millis(20));
        assert!(report.energy_j > 0.0, "leakage + board base");
        assert_eq!(report.completed().count(), 0);
    }

    #[test]
    fn job_completes_within_deadline_at_max_level() {
        let mut s = soc();
        // 10M ref-instr at 1 GHz ≈ 10 ms < 16 ms deadline.
        s.push_job(Job::new(
            1,
            10_000_000,
            SimTime::from_millis(16),
            JobClass::Heavy,
        ));
        let report = s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        let done: Vec<_> = report.completed().collect();
        assert_eq!(done.len(), 1);
        assert!(
            done[0].met_deadline(),
            "completed at {}",
            done[0].completed_at
        );
    }

    #[test]
    fn same_job_misses_deadline_at_min_level() {
        let mut s = soc();
        // 10M ref-instr at 200 MHz = 50 ms > 16 ms deadline.
        s.push_job(Job::new(
            1,
            10_000_000,
            SimTime::from_millis(16),
            JobClass::Heavy,
        ));
        let mut all = Vec::new();
        for _ in 0..5 {
            let report = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
            all.extend(report.completed().cloned().collect::<Vec<_>>());
        }
        assert_eq!(all.len(), 1);
        assert!(!all[0].met_deadline());
    }

    #[test]
    fn future_arrivals_dispatch_at_their_time() {
        let mut s = soc();
        s.schedule_job(
            SimTime::from_millis(10),
            Job::new(1, 1_000_000, SimTime::from_millis(30), JobClass::Normal),
        );
        assert_eq!(s.pending_arrivals(), 1);
        let report = s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        let done: Vec<_> = report.completed().collect();
        assert_eq!(done.len(), 1);
        assert!(
            done[0].completed_at >= SimTime::from_millis(10),
            "must not start before arrival"
        );
        assert_eq!(s.pending_arrivals(), 0);
    }

    #[test]
    fn arrivals_beyond_epoch_stay_pending() {
        let mut s = soc();
        s.schedule_job(
            SimTime::from_millis(25),
            Job::new(1, 1_000, SimTime::from_millis(50), JobClass::Normal),
        );
        let report = s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        assert_eq!(report.completed().count(), 0);
        assert_eq!(s.pending_arrivals(), 1);
        let report2 = s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        assert_eq!(report2.completed().count(), 1);
    }

    #[test]
    fn wrong_arity_request_is_rejected() {
        let mut s = xu3();
        let err = s.run_epoch(&LevelRequest::new(vec![0]));
        assert!(matches!(err, Err(SocError::InvalidSocConfig { .. })));
    }

    #[test]
    fn out_of_range_level_is_rejected() {
        let mut s = soc();
        let err = s.run_epoch(&LevelRequest::new(vec![99]));
        assert!(matches!(err, Err(SocError::LevelOutOfRange { .. })));
    }

    #[test]
    fn higher_level_finishes_work_sooner_but_costs_more_energy() {
        let run = |level: usize| {
            let mut s = soc();
            // Settle: one idle epoch at the target level so the transition
            // cost does not skew the comparison.
            s.run_epoch(&LevelRequest::new(vec![level])).unwrap();
            s.push_job(Job::new(
                1,
                20_000_000,
                SimTime::from_millis(120),
                JobClass::Heavy,
            ));
            let mut energy = 0.0;
            let mut finished = None;
            for _ in 0..10 {
                let r = s.run_epoch(&LevelRequest::new(vec![level])).unwrap();
                energy += r.energy_j;
                let first_done = r.completed().next().map(|c| c.completed_at);
                if first_done.is_some() {
                    finished = first_done;
                }
            }
            (
                energy,
                finished.expect("job finishes within 200 ms at any level"),
            )
        };
        let (e_low, t_low) = run(0);
        let (e_high, t_high) = run(2);
        assert!(t_high < t_low, "faster at high level");
        assert!(e_high > e_low, "more energy at high level");
    }

    #[test]
    fn observation_matches_report() {
        let mut s = xu3();
        s.push_job(Job::new(
            1,
            50_000_000,
            SimTime::from_millis(50),
            JobClass::Heavy,
        ));
        let report = s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        let obs = s.observe(&report);
        assert_eq!(obs.clusters.len(), 2);
        assert_eq!(obs.at, report.ended_at);
        for (c_obs, c_rep) in obs.clusters.iter().zip(&report.clusters) {
            assert_eq!(c_obs.util_avg, c_rep.util_avg);
            assert_eq!(c_obs.util_max, c_rep.util_max);
            assert_eq!(c_obs.level, c_rep.level);
        }
        // Heavy job went to the big cluster.
        assert!(obs.clusters[1].util_max > 0.0);
        assert_eq!(obs.clusters[0].util_max, 0.0);
    }

    #[test]
    fn energy_accumulates_across_epochs() {
        let mut s = soc();
        let r1 = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        let r2 = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        assert!((s.total_energy_j() - r1.energy_j - r2.energy_j).abs() < 1e-12);
        assert_eq!(s.epochs_run(), 2);
    }

    #[test]
    fn reset_restores_time_zero() {
        let mut s = soc();
        s.push_job(Job::new(
            1,
            1_000_000_000,
            SimTime::from_secs(1),
            JobClass::Normal,
        ));
        s.run_epoch(&LevelRequest::max(s.config())).unwrap();
        s.reset();
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.total_energy_j(), 0.0);
        assert_eq!(s.queued_jobs(), 0);
        assert_eq!(s.pending_arrivals(), 0);
        // Fully functional after reset.
        s.push_job(Job::new(
            2,
            1_000,
            SimTime::from_millis(20),
            JobClass::Normal,
        ));
        assert!(s.run_epoch(&LevelRequest::min(s.config())).is_ok());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_arrival_panics() {
        let mut s = soc();
        s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        s.schedule_job(
            SimTime::from_millis(1),
            Job::new(1, 1, SimTime::from_millis(2), JobClass::Light),
        );
    }

    #[test]
    fn hotplug_routes_errors_and_reduces_energy() {
        let mut s = xu3();
        assert!(matches!(
            s.set_cores_online(9, 1),
            Err(SocError::NoSuchCluster {
                cluster: 9,
                available: 2
            })
        ));
        assert!(matches!(
            s.set_cores_online(0, 0),
            Err(SocError::InvalidHotplug { .. })
        ));
        assert_eq!(s.set_cores_online(0, 1).unwrap(), 4);
        let r_half = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        s.reset();
        let r_full = s.run_epoch(&LevelRequest::min(s.config())).unwrap();
        assert!(
            r_half.energy_j < r_full.energy_j,
            "parked cores must not leak: {} vs {}",
            r_half.energy_j,
            r_full.energy_j
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut s = xu3();
            for i in 0..50u64 {
                s.schedule_job(
                    SimTime::from_millis(i * 7),
                    Job::new(
                        i,
                        3_000_000 + i * 10_000,
                        SimTime::from_millis(i * 7 + 16),
                        JobClass::Heavy,
                    ),
                );
            }
            let mut energy = 0.0;
            for e in 0..25 {
                let level = (e % 19) as usize;
                let r = s
                    .run_epoch(&LevelRequest::new(vec![level.min(12), level]))
                    .unwrap();
                energy += r.energy_j;
            }
            energy
        };
        assert_eq!(run(), run());
    }
}

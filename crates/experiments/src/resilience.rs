//! Fault application and graceful degradation for closed-loop runs.
//!
//! [`FaultHarness`] turns a [`FaultPlan`]'s sampled flags into physics:
//! it corrupts the telemetry the governor sees, clamps OPP requests
//! during thermal-throttle events, hotplugs cores out during transient
//! offline events, and injects Q-table SEUs into governors that model
//! corruptible storage. An optional [`Watchdog`] supplies the graceful
//! degradation path: whenever the primary policy misses its decision
//! deadline or the telemetry is flagged unreliable, a safe fallback
//! governor decides instead.
//!
//! The harness only *applies* faults; the schedule itself lives in
//! [`FaultPlan`], so the same seed replays the identical fault trace no
//! matter which policy is being evaluated.

use governors::{Governor, GovernorKind, SystemState};
use simkit::{ClusterFaults, FaultCounts, FaultPlan, FaultRates};
use soc::{ClusterObservation, LevelRequest, Soc, SocConfig, SocError};

/// The degradation path: a cheap fallback governor that takes over when
/// the primary policy cannot be trusted this epoch (deadline overrun or
/// unreliable telemetry).
pub struct Watchdog {
    fallback: Box<dyn Governor>,
    engagements: u64,
}

impl Watchdog {
    /// Guards with an arbitrary fallback governor.
    pub fn new(fallback: Box<dyn Governor>) -> Self {
        Watchdog {
            fallback,
            engagements: 0,
        }
    }

    /// The default fail-operational fallback: a performance-like governor
    /// that pins every cluster at its highest OPP. It consumes no
    /// telemetry, so it cannot be misled by the very sensor faults that
    /// trigger it, and it preserves QoS while engaged — degradation shows
    /// up as extra energy, not as missed deadlines.
    pub fn fail_operational(config: &SocConfig) -> Self {
        Watchdog::new(GovernorKind::Performance.build(config))
    }

    /// A thermally conservative alternative: a powersave-like governor
    /// that pins every cluster at its lowest OPP — safest when thermal
    /// headroom matters more than QoS, at the price of deadline misses
    /// while engaged.
    pub fn safe_floor(config: &SocConfig) -> Self {
        Watchdog::new(GovernorKind::Powersave.build(config))
    }

    /// Display name of the fallback governor.
    pub fn name(&self) -> &str {
        self.fallback.name()
    }

    /// Number of epochs the fallback decided instead of the primary.
    pub fn engagements(&self) -> u64 {
        self.engagements
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("fallback", &self.fallback.name())
            .field("engagements", &self.engagements)
            .finish()
    }
}

/// Applies a [`FaultPlan`]'s sampled faults to a closed-loop run.
///
/// Drive it from the runner, twice per epoch:
///
/// 1. [`FaultHarness::begin_epoch`] before the epoch executes — advances
///    the plan and applies the *physical* faults (hotplug, throttle
///    clamp) to the SoC and the pending level request.
/// 2. [`FaultHarness::decide`] at the epoch boundary, in place of
///    `governor.decide_into` — applies the *telemetry* faults to the
///    observation, routes the decision through the watchdog when one is
///    configured, and delivers any scheduled SEU to the governor.
#[derive(Debug)]
pub struct FaultHarness {
    plan: FaultPlan,
    watchdog: Option<Watchdog>,
    /// Physical core count per cluster (hotplug restore target).
    cores: Vec<usize>,
    /// OPP ceiling per cluster while thermally throttled.
    throttle_cap: Vec<usize>,
    /// Online-core count currently applied, to skip no-op hotplug calls.
    online: Vec<usize>,
    /// Last epoch's clean observation, served during stale-telemetry
    /// faults.
    prev_clean: Vec<ClusterObservation>,
    scratch: Vec<ClusterObservation>,
    have_clean: bool,
}

impl FaultHarness {
    /// Builds a harness for `config`'s cluster layout with a dedicated
    /// fault plan seeded by `seed`.
    ///
    /// # Errors
    ///
    /// [`SocError::InvalidFaultPlan`] when `rates` contains a probability
    /// outside `[0, 1]` or a non-finite/negative sigma.
    pub fn new(config: &SocConfig, seed: u64, rates: FaultRates) -> Result<Self, SocError> {
        if !rates.is_valid() {
            return Err(SocError::InvalidFaultPlan {
                reason: format!(
                    "probabilities must be in [0, 1] and sigmas finite and non-negative: {rates:?}"
                ),
            });
        }
        let cores: Vec<usize> = config.clusters.iter().map(|c| c.cores).collect();
        let throttle_cap = config
            .clusters
            .iter()
            .map(|c| c.opps.max_level() / 2)
            .collect();
        let online = cores.clone();
        Ok(FaultHarness {
            plan: FaultPlan::new(seed, config.clusters.len(), rates),
            watchdog: None,
            cores,
            throttle_cap,
            online,
            prev_clean: Vec::new(),
            scratch: Vec::new(),
            have_clean: false,
        })
    }

    /// Adds a watchdog: on a decision-deadline overrun or flagged
    /// telemetry the fallback governor decides instead of the primary.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Advances the fault plan one epoch and applies the physical faults:
    /// transient core-offline events hotplug one core out (down to a
    /// one-core floor), and thermal-throttle events clamp the pending
    /// request to the lower half of each cluster's OPP table.
    pub fn begin_epoch(&mut self, soc: &mut Soc, request: &mut LevelRequest) {
        self.plan.advance();
        for (c, ((fault, &cores), online)) in self
            .plan
            .clusters()
            .iter()
            .zip(&self.cores)
            .zip(self.online.iter_mut())
            .enumerate()
        {
            let target = if fault.core_offline {
                cores.saturating_sub(1).max(1)
            } else {
                cores
            };
            if target != *online && soc.set_cores_online(c, target).is_ok() {
                *online = target;
            }
        }
        for ((level, fault), &cap) in request
            .levels
            .iter_mut()
            .zip(self.plan.clusters())
            .zip(&self.throttle_cap)
        {
            if fault.forced_throttle {
                *level = (*level).min(cap);
            }
        }
    }

    /// Runs the epoch-boundary decision under this epoch's faults.
    ///
    /// Telemetry faults corrupt `state` in place (noise, dropout, stale
    /// substitution from the previous clean reading). With a watchdog, an
    /// overrun or flagged telemetry engages the fallback; without one, an
    /// overrun leaves the previous request in force and flagged telemetry
    /// is fed to the primary as-is. A scheduled SEU is delivered to the
    /// governor last. Returns whether the watchdog engaged.
    pub fn decide(
        &mut self,
        governor: &mut dyn Governor,
        state: &mut SystemState,
        request: &mut LevelRequest,
    ) -> bool {
        // Keep this epoch's clean reading before corrupting it: stale
        // faults next epoch serve it in place of the live observation.
        self.scratch.clone_from(&state.soc.clusters);
        let mut unreliable = false;
        if self.have_clean {
            for ((obs, fault), prev) in state
                .soc
                .clusters
                .iter_mut()
                .zip(self.plan.clusters())
                .zip(&self.prev_clean)
            {
                unreliable |= corrupt_observation(obs, fault, Some(prev));
            }
        } else {
            for (obs, fault) in state.soc.clusters.iter_mut().zip(self.plan.clusters()) {
                unreliable |= corrupt_observation(obs, fault, None);
            }
        }
        std::mem::swap(&mut self.prev_clean, &mut self.scratch);
        self.have_clean = true;

        let overrun = self.plan.decision_overrun();
        let engaged = match self.watchdog.as_mut() {
            Some(watchdog) if overrun || unreliable => {
                watchdog.engagements += 1;
                watchdog.fallback.decide_into(state, request);
                true
            }
            _ if overrun => {
                // No watchdog: the missed decision never lands, so the
                // previous request stays in force for the next epoch.
                false
            }
            _ => {
                governor.decide_into(state, request);
                false
            }
        };
        if let Some(entropy) = self.plan.take_seu() {
            governor.inject_table_seu(entropy);
        }
        engaged
    }

    /// The fault schedule being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cumulative injected-fault counts.
    pub fn counts(&self) -> &FaultCounts {
        self.plan.counts()
    }

    /// Epochs the watchdog decided instead of the primary (zero without
    /// a watchdog).
    pub fn watchdog_engagements(&self) -> u64 {
        self.watchdog.as_ref().map_or(0, Watchdog::engagements)
    }
}

/// Applies one cluster's telemetry faults to its observation. Returns
/// whether the reading is flagged unreliable (stale or dropped) — the
/// watchdog's trigger condition.
fn corrupt_observation(
    obs: &mut ClusterObservation,
    fault: &ClusterFaults,
    prev: Option<&ClusterObservation>,
) -> bool {
    if fault.stale {
        if let Some(prev) = prev {
            *obs = *prev;
        }
    }
    if fault.dropout {
        obs.util_avg = 0.0;
        obs.util_max = 0.0;
        obs.queued = 0;
    }
    if fault.util_noise != 0.0 {
        obs.util_avg = (obs.util_avg + fault.util_noise).clamp(0.0, 1.0);
        obs.util_max = (obs.util_max + fault.util_noise).clamp(0.0, 1.0);
    }
    if fault.temp_noise_c != 0.0 {
        obs.temp_c += fault.temp_noise_c;
    }
    fault.stale || fault.dropout
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::QosFeedback;
    use soc::EpochObservation;

    fn config() -> SocConfig {
        SocConfig::odroid_xu3_like().unwrap()
    }

    fn state_for(soc: &Soc) -> SystemState {
        let clusters = soc
            .clusters()
            .iter()
            .map(|_| ClusterObservation {
                util_avg: 0.6,
                util_max: 0.8,
                level: 3,
                num_levels: 13,
                freq_hz: 800_000_000,
                freq_range_hz: (200_000_000, 1_400_000_000),
                temp_c: 45.0,
                throttled: false,
                queued: 2,
            })
            .collect();
        SystemState::new(
            EpochObservation {
                at: soc.now(),
                clusters,
                energy_j: 0.1,
            },
            QosFeedback::default(),
        )
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let rates = FaultRates {
            telemetry_noise: 2.0,
            ..FaultRates::zero()
        };
        let err = FaultHarness::new(&config(), 1, rates).unwrap_err();
        assert!(matches!(err, SocError::InvalidFaultPlan { .. }));
    }

    #[test]
    fn zero_rate_harness_changes_nothing() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let mut harness = FaultHarness::new(&cfg, 9, FaultRates::zero()).unwrap();
        let mut governor = GovernorKind::Schedutil.build(&cfg);
        let mut request = LevelRequest::max(&cfg);
        let pristine_request = request.clone();
        harness.begin_epoch(&mut soc, &mut request);
        assert_eq!(request, pristine_request, "no throttle clamp");

        let mut state = state_for(&soc);
        let clean = state.clone();
        let mut shadow = pristine_request.clone();
        governor.decide_into(&clean, &mut shadow);
        let engaged = harness.decide(governor.as_mut(), &mut state, &mut request);
        assert!(!engaged);
        assert_eq!(state, clean, "telemetry untouched");
        assert_eq!(request, shadow, "same decision as the bare governor");
        assert_eq!(harness.counts().total(), 0);
    }

    #[test]
    fn watchdog_engages_on_flagged_telemetry() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let rates = FaultRates {
            telemetry_dropout: 1.0,
            ..FaultRates::zero()
        };
        let mut harness = FaultHarness::new(&cfg, 3, rates)
            .unwrap()
            .with_watchdog(Watchdog::safe_floor(&cfg));
        let mut governor = GovernorKind::Performance.build(&cfg);
        let mut request = LevelRequest::max(&cfg);
        harness.begin_epoch(&mut soc, &mut request);
        let mut state = state_for(&soc);
        let engaged = harness.decide(governor.as_mut(), &mut state, &mut request);
        assert!(engaged, "dropout flags telemetry, watchdog takes over");
        assert_eq!(harness.watchdog_engagements(), 1);
        assert!(
            request.levels.iter().all(|&l| l == 0),
            "safe floor pins the minimum OPP: {:?}",
            request.levels
        );
        assert!(state.soc.clusters.iter().all(|c| c.util_avg == 0.0));
    }

    #[test]
    fn overrun_without_watchdog_keeps_previous_request() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let rates = FaultRates {
            decision_overrun: 1.0,
            ..FaultRates::zero()
        };
        let mut harness = FaultHarness::new(&cfg, 4, rates).unwrap();
        let mut governor = GovernorKind::Powersave.build(&cfg);
        let mut request = LevelRequest::max(&cfg);
        harness.begin_epoch(&mut soc, &mut request);
        let mut state = state_for(&soc);
        harness.decide(governor.as_mut(), &mut state, &mut request);
        assert_eq!(
            request,
            LevelRequest::max(&cfg),
            "powersave never got to lower the levels"
        );
        assert!(harness.counts().decision_overrun > 0);
    }

    #[test]
    fn stale_telemetry_serves_previous_epoch_reading() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let rates = FaultRates {
            telemetry_stale: 1.0,
            ..FaultRates::zero()
        };
        let mut harness = FaultHarness::new(&cfg, 5, rates).unwrap();
        let mut governor = GovernorKind::Schedutil.build(&cfg);
        let mut request = LevelRequest::min(&cfg);

        harness.begin_epoch(&mut soc, &mut request);
        let mut first = state_for(&soc);
        harness.decide(governor.as_mut(), &mut first, &mut request);
        // First epoch has no previous clean reading: observation kept.
        assert_eq!(first.soc.clusters.first().unwrap().util_avg, 0.6);

        harness.begin_epoch(&mut soc, &mut request);
        let mut second = state_for(&soc);
        for c in second.soc.clusters.iter_mut() {
            c.util_avg = 0.99;
        }
        harness.decide(governor.as_mut(), &mut second, &mut request);
        assert_eq!(
            second.soc.clusters.first().unwrap().util_avg,
            0.6,
            "stale fault replays the previous epoch's clean value"
        );
    }

    #[test]
    fn core_offline_hotplugs_and_restores() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let full = soc.clusters().iter().map(|c| c.capacity_ips()).sum::<f64>();
        let rates = FaultRates {
            core_offline: 1.0,
            offline_epochs: 1,
            ..FaultRates::zero()
        };
        let mut harness = FaultHarness::new(&cfg, 6, rates).unwrap();
        let mut request = LevelRequest::max(&cfg);
        harness.begin_epoch(&mut soc, &mut request);
        let reduced = soc.clusters().iter().map(|c| c.capacity_ips()).sum::<f64>();
        assert!(reduced < full, "a core went offline on each cluster");
        // Let the countdown expire (1 forced epoch + 1 gap epoch).
        harness.begin_epoch(&mut soc, &mut request);
        let restored = soc.clusters().iter().map(|c| c.capacity_ips()).sum::<f64>();
        assert_eq!(restored, full, "cores come back after the event");
    }

    #[test]
    fn throttle_clamps_request_to_lower_half() {
        let cfg = config();
        let mut soc = Soc::new(cfg.clone()).unwrap();
        let rates = FaultRates {
            thermal_throttle: 1.0,
            throttle_epochs: 2,
            ..FaultRates::zero()
        };
        let mut harness = FaultHarness::new(&cfg, 7, rates).unwrap();
        let mut request = LevelRequest::max(&cfg);
        harness.begin_epoch(&mut soc, &mut request);
        for (level, cluster) in request.levels.iter().zip(&cfg.clusters) {
            assert!(
                *level <= cluster.opps.max_level() / 2,
                "throttle caps the request"
            );
        }
    }
}

//! Bench for **E4** — the decision-latency comparison. Criterion measures
//! the *host cost* of simulating one hardware decision/update and one
//! full closed-loop epoch through the register interface; the simulated
//! latencies themselves are printed from the regenerated ladder table.

use criterion::{criterion_group, criterion_main, Criterion};

use experiments::e4_decision_latency::{distribution, distribution_table, ladder, ladder_table};
use rlpm::fixed::Fx;
use rlpm::RlConfig;
use rlpm_hw::{HwConfig, PolicyEngine};

fn bench_e4(c: &mut Criterion) {
    let soc_config = bench::soc_under_test();

    let l = ladder(&soc_config);
    println!("{}", ladder_table(&l).to_markdown());
    let d = distribution(&soc_config, 10, 4);
    println!("{}", distribution_table(&d).to_markdown());
    println!(
        "speedups: up to {:.1}x compute-only, {:.2}x mean end-to-end (paper: up to 40x / 3.92x)\n",
        l.max_speedup, d.speedup
    );

    let rl = RlConfig::for_soc(&soc_config);
    let mut group = c.benchmark_group("e4");

    group.bench_function("engine_decision_cycle_accurate", |b| {
        let mut engine = PolicyEngine::new(HwConfig::default(), &rl);
        let mut s = 0usize;
        b.iter(|| {
            s = (s + 17) % rl.num_states();
            engine.run_decision(s)
        })
    });

    group.bench_function("engine_update_cycle_accurate", |b| {
        let mut engine = PolicyEngine::new(HwConfig::default(), &rl);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            engine.run_update(
                i % rl.num_states(),
                i % rl.num_actions(),
                Fx::from_f64(0.25),
                (i * 31) % rl.num_states(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);

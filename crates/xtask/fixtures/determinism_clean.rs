//! Fixture: simulation-style code the determinism lint must accept.
//! Comments may mention Instant or HashMap without firing.

use std::collections::BTreeMap;

pub fn tally(events: &[Event]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for e in events {
        *counts.entry(e.name().to_string()).or_insert(0) += 1;
    }
    counts
}

pub fn jitter(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}

pub fn seeded(seed: u64) -> SimRng {
    SimRng::seed_from(seed)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}

//! A deterministic discrete-event queue.
//!
//! Events are ordered by their scheduled time; events scheduled for the same
//! instant are delivered in FIFO insertion order. Determinism of simultaneous
//! events matters: a DVFS epoch boundary and a job arrival can coincide, and
//! the simulation must behave identically run-to-run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event together with the instant it is scheduled for.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number establishing FIFO order among simultaneous
    /// events.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with stable FIFO tie-breaking.
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_millis(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second"); // same instant: FIFO order is preserved
/// assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation clock: the time of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past indicates a simulation bug and must not be silently
    /// reordered.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "heap returned an out-of-order event");
        self.now = ev.at;
        Some((ev.at, ev.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`. Leaves later events queued and the clock untouched
    /// otherwise.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drops all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Rewinds the queue to a fresh time-zero state — no pending events,
    /// clock at [`SimTime::ZERO`], sequence counter restarted — while
    /// keeping the heap's allocation for reuse. Equivalent to replacing
    /// the queue with [`EventQueue::new`], without the reallocation.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(30), "b");
        assert_eq!(
            q.pop_until(SimTime::from_millis(20)),
            Some((SimTime::from_millis(10), "a"))
        );
        assert_eq!(q.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1);
        // Clock stayed at the last popped event, not the deadline.
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        // Re-scheduling at exactly `now` models zero-delay follow-up events.
        q.schedule(SimTime::from_millis(10), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Whatever order events are inserted in, they come out sorted by
        /// time, with ties in insertion order.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ms) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(ms), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &ms)| (ms, i)).collect();
            expected.sort(); // stable key (ms, insertion index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_millis(), i))).collect();
            prop_assert_eq!(got, expected);
        }

        /// Interleaved schedule/pop never yields a decreasing clock.
        #[test]
        fn prop_clock_is_monotone(deltas in proptest::collection::vec(0u64..50, 1..100)) {
            let mut q = EventQueue::new();
            let mut last = SimTime::ZERO;
            for &d in &deltas {
                let at = q.now() + SimDuration::from_millis(d);
                q.schedule(at, ());
                let (t, _) = q.pop().unwrap();
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}

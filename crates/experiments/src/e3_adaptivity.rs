//! **E3 — scenario-switching adaptivity**: "the policy can flexibly
//! manage the system power regardless of the application scenario". The
//! Markov phase mixer switches between regimes mid-run; per-phase energy
//! and QoS show whether a policy adapts or is stuck with one regime's
//! operating point.

use std::collections::BTreeMap;

use governors::Governor;
use simkit::SimTime;
use soc::{Soc, SocConfig};
use workload::scenarios::MarkovMix;

use crate::table::{fmt_f64, Table};
use crate::{cache, run, PolicyKind, RunConfig, TrainingProtocol};

/// Adaptivity-run configuration.
#[derive(Debug, Clone)]
pub struct E3Config {
    /// Total simulated seconds of the phase-switching trace.
    pub duration_secs: u64,
    /// Seed for the trace and policies.
    pub seed: u64,
    /// Policies to compare (RL is trained on the mixed scenario first).
    pub policies: Vec<PolicyKind>,
    /// RL pre-training protocol.
    pub training: TrainingProtocol,
}

impl Default for E3Config {
    fn default() -> Self {
        E3Config {
            duration_secs: 240,
            seed: 7,
            policies: vec![
                PolicyKind::Baseline(governors::GovernorKind::Performance),
                PolicyKind::Baseline(governors::GovernorKind::Ondemand),
                PolicyKind::Baseline(governors::GovernorKind::Interactive),
                PolicyKind::Baseline(governors::GovernorKind::Schedutil),
                PolicyKind::Rl,
            ],
            training: TrainingProtocol::default(),
        }
    }
}

impl E3Config {
    /// A short run for tests.
    pub fn quick() -> Self {
        E3Config {
            duration_secs: 40,
            seed: 7,
            policies: vec![
                PolicyKind::Baseline(governors::GovernorKind::Ondemand),
                PolicyKind::Rl,
            ],
            training: TrainingProtocol::quick(),
        }
    }
}

/// Energy and QoS units accumulated inside one phase kind.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseFigures {
    /// Seconds spent in the phase kind.
    pub seconds: f64,
    /// Energy consumed (J).
    pub energy_j: f64,
    /// QoS units delivered.
    pub qos_units: f64,
}

impl PhaseFigures {
    /// Energy per QoS unit inside this phase kind.
    pub fn energy_per_qos(&self) -> f64 {
        if self.qos_units <= 0.0 {
            f64::INFINITY
        } else {
            self.energy_j / self.qos_units
        }
    }
}

/// Per-policy result: phase-kind → figures.
#[derive(Debug, Clone, PartialEq)]
pub struct E3PolicyResult {
    /// The policy's display name.
    pub policy: String,
    /// Figures by phase name ("video", "gaming", …).
    pub per_phase: BTreeMap<String, PhaseFigures>,
    /// Whole-run energy per QoS.
    pub overall_energy_per_qos: f64,
}

/// Runs one policy over the identical phase-switching trace and
/// attributes per-epoch energy/QoS to phases.
pub fn run_policy_over_phases(
    soc_config: &SocConfig,
    config: &E3Config,
    policy: PolicyKind,
) -> E3PolicyResult {
    // A policy that cannot run (invalid SoC config, or a trace the
    // runner could not produce) degrades to an empty attribution rather
    // than a panic; callers see the policy row with no phase figures.
    let empty = |overall: f64| E3PolicyResult {
        policy: policy.name().to_owned(),
        per_phase: BTreeMap::new(),
        overall_energy_per_qos: overall,
    };
    let mut governor: Box<dyn Governor> = policy.build_trained(
        soc_config,
        workload::ScenarioKind::Mixed,
        config.training,
        config.seed,
    );
    let Ok(mut soc) = Soc::new(soc_config.clone()) else {
        return empty(f64::INFINITY);
    };
    let mut mix = MarkovMix::new(config.seed.wrapping_add(0xE3));
    let metrics = run(
        &mut soc,
        &mut mix,
        governor.as_mut(),
        RunConfig::seconds(config.duration_secs).with_trace(),
    );
    let Some(trace) = metrics.trace.as_ref() else {
        return empty(metrics.energy_per_qos);
    };

    // Attribute each epoch to the phase active at its end.
    let history: Vec<(SimTime, &str)> = mix.phase_history();
    let epoch_s = soc_config.epoch.as_secs_f64();
    let mut per_phase: BTreeMap<String, PhaseFigures> = BTreeMap::new();
    let power = trace.series("power_w");
    let units = trace.series("qos_units");
    for ((t_s, p_w), (_, u)) in power.into_iter().zip(units) {
        let at = simkit::SimDuration::from_secs_f64(t_s);
        let phase = history
            .iter()
            .rev()
            .find(|(start, _)| (SimTime::ZERO + at) >= *start)
            .map(|(_, name)| *name)
            .unwrap_or("unknown");
        let entry = per_phase.entry(phase.to_owned()).or_default();
        entry.seconds += epoch_s;
        entry.energy_j += p_w * epoch_s;
        entry.qos_units += u;
    }

    E3PolicyResult {
        policy: policy.name().to_owned(),
        per_phase,
        overall_energy_per_qos: metrics.energy_per_qos,
    }
}

/// Runs every configured policy over the same trace.
pub fn run_e3(soc_config: &SocConfig, config: &E3Config) -> Vec<E3PolicyResult> {
    let soc_config_owned = soc_config.clone();
    let job_config = config.clone();
    crate::par::parallel_map("e3", config.policies.clone(), move |policy| {
        cached_policy_over_phases(&soc_config_owned, &job_config, policy)
    })
}

/// [`run_policy_over_phases`] through the cache when it is enabled: the
/// *reduced* per-phase attribution is the cache entry, so a warm run
/// skips the traced simulation entirely (the raw trace itself is never
/// cached).
fn cached_policy_over_phases(
    soc_config: &SocConfig,
    config: &E3Config,
    policy: PolicyKind,
) -> E3PolicyResult {
    if !cache::is_enabled() {
        return run_policy_over_phases(soc_config, config, policy);
    }
    let key = cache::Key::new("e3policy")
        .debug(soc_config)
        .str(policy.name())
        .u64(config.duration_secs)
        .u64(config.seed)
        .debug(&config.training)
        .finish();
    let bytes = cache::get_or_compute("e3policy", key, || {
        let result = run_policy_over_phases(soc_config, config, policy);
        let mut enc = cache::Enc::new();
        enc.str(&result.policy);
        enc.u64(result.per_phase.len() as u64);
        for (phase, figures) in &result.per_phase {
            enc.str(phase);
            enc.f64(figures.seconds);
            enc.f64(figures.energy_j);
            enc.f64(figures.qos_units);
        }
        enc.f64(result.overall_energy_per_qos);
        Some(enc.finish())
    });
    bytes
        .and_then(|bytes| decode_policy_result(&bytes))
        .unwrap_or_else(|| run_policy_over_phases(soc_config, config, policy))
}

fn decode_policy_result(bytes: &[u8]) -> Option<E3PolicyResult> {
    let mut dec = cache::Dec::new(bytes);
    let policy = dec.str()?;
    let phases = dec.u64()?;
    let mut per_phase = BTreeMap::new();
    for _ in 0..phases {
        let name = dec.str()?;
        let figures = PhaseFigures {
            seconds: dec.f64()?,
            energy_j: dec.f64()?,
            qos_units: dec.f64()?,
        };
        per_phase.insert(name, figures);
    }
    let overall_energy_per_qos = dec.f64()?;
    if !dec.finished() {
        return None;
    }
    Some(E3PolicyResult {
        policy,
        per_phase,
        overall_energy_per_qos,
    })
}

/// Renders the per-phase energy-per-QoS comparison.
pub fn phase_table(results: &[E3PolicyResult]) -> Table {
    // Collect the union of phase names.
    let mut phases: Vec<String> = results
        .iter()
        .flat_map(|r| r.per_phase.keys().cloned())
        .collect();
    phases.sort();
    phases.dedup();

    let mut header: Vec<String> = vec!["phase".into()];
    header.extend(results.iter().map(|r| r.policy.clone()));
    let mut table = Table::new(
        "E3: per-phase energy per QoS unit across a phase-switching trace",
        header,
    );
    for phase in &phases {
        let mut row = vec![phase.clone()];
        for r in results {
            row.push(
                r.per_phase
                    .get(phase)
                    .map(|f| fmt_f64(f.energy_per_qos()))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push(row);
    }
    let mut overall = vec!["(overall)".to_owned()];
    for r in results {
        overall.push(fmt_f64(r.overall_energy_per_qos));
    }
    table.push(overall);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_attributed_and_tables_render() {
        let soc_config = SocConfig::odroid_xu3_like().unwrap();
        let config = E3Config::quick();
        let results = run_e3(&soc_config, &config);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                !r.per_phase.is_empty(),
                "{}: no phases attributed",
                r.policy
            );
            let total_s: f64 = r.per_phase.values().map(|f| f.seconds).sum();
            assert!(
                (total_s - config.duration_secs as f64).abs() < 1.0,
                "{}: attributed {total_s}s of {}s",
                r.policy,
                config.duration_secs
            );
            assert!(r.overall_energy_per_qos.is_finite());
        }
        let table = phase_table(&results);
        assert!(table.len() >= 2, "at least one phase plus the overall row");
        assert!(table.to_markdown().contains("(overall)"));
    }
}

//! Hand-rolled argument parsing for `rlpm-sim` (no external CLI crates).
//!
//! Grammar: `rlpm-sim <command> [positional...] [--flag [value]]...`.
//! Flags may appear anywhere after the command; unknown flags are errors
//! (not silently ignored), and every command validates its own
//! requirements in `commands.rs`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The command word (`run`, `train`, …).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--flag value` / `--flag` pairs (bare flags map to an empty
    /// string).
    pub flags: BTreeMap<String, String>,
}

/// Argument-parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

/// Flags that take no value.
const BARE_FLAGS: &[&str] = &[
    "trace",
    "quiet",
    "help",
    "quick",
    "no-cache",
    "fail-on-quarantine",
    "stdio",
];

/// Every `rlpm-sim` subcommand, in help order.
///
/// This list is the single source of truth for the docs lint in
/// `cargo xtask check`, which parses it out of this file and fails when a
/// command is mentioned in neither `README.md` nor `EXPERIMENTS.md`.
pub const COMMANDS: &[&str] = &[
    "run", "fleet", "train", "eval", "compare", "record", "replay", "latency", "e9", "trace",
    "serve", "client", "help",
];

/// Parses a raw argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] when no command is given, a value-taking
/// flag has no value, or a flag is malformed.
pub fn parse<I, S>(args: I) -> Result<Invocation, ParseArgsError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut args = args.into_iter().map(Into::into).peekable();
    let command = args
        .next()
        .ok_or_else(|| ParseArgsError("no command given; try `rlpm-sim help`".into()))?;
    if command.starts_with('-') {
        return Err(ParseArgsError(format!(
            "expected a command, got flag {command:?}; try `rlpm-sim help`"
        )));
    }
    let mut positional = Vec::new();
    let mut flags = BTreeMap::new();
    while let Some(arg) = args.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if name.is_empty() {
                return Err(ParseArgsError("empty flag `--`".into()));
            }
            // `--flag=value` form.
            if let Some((k, v)) = name.split_once('=') {
                flags.insert(k.to_owned(), v.to_owned());
                continue;
            }
            if BARE_FLAGS.contains(&name) {
                flags.insert(name.to_owned(), String::new());
                continue;
            }
            // `--flag value` form: the next token is the value unless it
            // is another flag.
            match args.next_if(|next| !next.starts_with("--")) {
                Some(value) => {
                    flags.insert(name.to_owned(), value);
                }
                None => {
                    return Err(ParseArgsError(format!("flag --{name} needs a value")));
                }
            }
        } else {
            positional.push(arg);
        }
    }
    Ok(Invocation {
        command,
        positional,
        flags,
    })
}

impl Invocation {
    /// A flag's value parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the flag is present but unparsable.
    pub fn flag_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the flag is absent.
    pub fn required_flag(&self, name: &str) -> Result<&str, ParseArgsError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ParseArgsError(format!("missing required flag --{name}")))
    }

    /// Whether a bare flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Rejects flags outside the allowed set (catches typos early).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] naming the first unknown flag.
    pub fn allow_flags(&self, allowed: &[&str]) -> Result<(), ParseArgsError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ParseArgsError(format!(
                    "unknown flag --{key} for `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_positionals_and_flags() {
        let inv = parse(["run", "video", "rlpm", "--secs", "30", "--trace"]).unwrap();
        assert_eq!(inv.command, "run");
        assert_eq!(inv.positional, vec!["video", "rlpm"]);
        assert_eq!(inv.flag_or("secs", 0u64).unwrap(), 30);
        assert!(inv.has("trace"));
    }

    #[test]
    fn quick_is_a_bare_flag() {
        let inv = parse(["e9", "--quick", "--fault-seed", "7"]).unwrap();
        assert!(inv.has("quick"));
        assert_eq!(inv.flag_or("fault-seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn equals_form_is_supported() {
        let inv = parse(["train", "gaming", "--episodes=12", "--out=policy.bin"]).unwrap();
        assert_eq!(inv.flag_or("episodes", 0u32).unwrap(), 12);
        assert_eq!(inv.required_flag("out").unwrap(), "policy.bin");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(["run", "video", "--secs"]).unwrap_err();
        assert!(err.0.contains("--secs"));
        let err = parse(["run", "--secs", "--trace"]).unwrap_err();
        assert!(err.0.contains("needs a value"));
    }

    #[test]
    fn no_command_is_an_error() {
        assert!(parse(Vec::<String>::new()).is_err());
        assert!(parse(["--help"]).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_by_allow_list() {
        let inv = parse(["run", "video", "--sexs", "30"]).unwrap();
        let err = inv.allow_flags(&["secs", "seed"]).unwrap_err();
        assert!(err.0.contains("--sexs"));
        assert!(err.0.contains("allowed"));
    }

    #[test]
    fn flag_parse_failure_is_reported() {
        let inv = parse(["run", "--secs", "abc"]).unwrap();
        let err = inv.flag_or("secs", 0u64).unwrap_err();
        assert!(err.0.contains("abc"));
    }

    #[test]
    fn required_flag_absence_is_reported() {
        let inv = parse(["eval", "video"]).unwrap();
        let err = inv.required_flag("policy-file").unwrap_err();
        assert!(err.0.contains("policy-file"));
    }
}

//! Bench for **E5** — the QoS-violation table behind the "without
//! compromising user satisfaction" claim. Times the worst-case accounting
//! path (a heavily violating powersave gaming run) and prints the
//! regenerated quick tables.

use criterion::{criterion_group, criterion_main, Criterion};

use experiments::e1_energy_per_qos::{run_e1, E1Config};
use experiments::e5_qos_violations::{qos_ratio_table, violations_table};
use experiments::{run, RunConfig};
use governors::GovernorKind;
use soc::Soc;
use workload::ScenarioKind;

fn bench_e5(c: &mut Criterion) {
    let soc_config = bench::soc_under_test();

    let result = run_e1(&soc_config, &E1Config::quick());
    println!("{}", violations_table(&result).to_markdown());
    println!("{}", qos_ratio_table(&result).to_markdown());

    let mut group = c.benchmark_group("e5");
    group.sample_size(10);
    group.bench_function("powersave_gaming_violation_accounting_10s", |b| {
        b.iter(|| {
            let mut soc = Soc::new(soc_config.clone()).unwrap();
            let mut scenario = ScenarioKind::Gaming.build(9);
            let mut governor = GovernorKind::Powersave.build(&soc_config);
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(10),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);

//! Typed wire messages for the JSON-lines protocol.
//!
//! This module is the single source of truth for the message catalogue:
//! the `*_TYPES` / `ERROR_CODES` const tables below are what the
//! `docs-protocol` xtask lint diffs against `PROTOCOL.md`, and the unit
//! tests at the bottom pin the tables to the enum variants in both
//! directions. Renaming a variant without updating its table entry (or
//! the spec) fails the build's lint gate — the docs cannot drift.
//!
//! Defaults deliberately mirror the `rlpm-sim` CLI: a `simulate` request
//! with every field omitted runs exactly what `rlpm-sim run` runs with no
//! flags, so transcripts and shell invocations stay interchangeable.

use crate::json::Value;

/// Protocol version this server speaks. Bumped only on breaking wire
/// changes; see PROTOCOL.md § Version negotiation.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one request line, in bytes (newline excluded). Longer
/// lines are rejected with an `oversized-line` error and discarded to the
/// next newline so the connection stays usable.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Every request `type` the server accepts, in spec order.
pub const REQUEST_TYPES: &[&str] = &[
    "hello", "simulate", "train", "eval", "fleet", "status", "shutdown",
];

/// Every response `type` the server emits, in spec order.
pub const RESPONSE_TYPES: &[&str] = &["hello-ok", "result", "error"];

/// Every event `type` the server emits, in spec order.
pub const EVENT_TYPES: &[&str] = &["accepted", "progress"];

/// Every `code` an `error` response can carry, in spec order.
pub const ERROR_CODES: &[&str] = &[
    "bad-json",
    "oversized-line",
    "bad-request",
    "unknown-type",
    "unsupported-version",
    "quarantined",
    "internal",
];

/// Machine-readable failure class carried by an `error` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The line exceeded [`MAX_LINE_BYTES`].
    OversizedLine,
    /// Valid JSON, but a field was missing, mistyped, or named an
    /// unknown scenario/policy/SoC/experiment.
    BadRequest,
    /// The `type` field named no known request.
    UnknownType,
    /// `hello` asked for a protocol version this server does not speak.
    UnsupportedVersion,
    /// The job panicked repeatedly and was quarantined by the scheduler
    /// (the CLI's exit-4 convention); the payload lists the cells.
    Quarantined,
    /// The server failed for a reason that is not the client's fault.
    Internal,
}

impl ErrorCode {
    /// All codes, in the same order as [`ERROR_CODES`].
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadJson,
        ErrorCode::OversizedLine,
        ErrorCode::BadRequest,
        ErrorCode::UnknownType,
        ErrorCode::UnsupportedVersion,
        ErrorCode::Quarantined,
        ErrorCode::Internal,
    ];

    /// The `code` string written on the wire.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::OversizedLine => "oversized-line",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownType => "unknown-type",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A request that failed validation, with the code the error response
/// should carry.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable one-line explanation.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> RequestError {
        RequestError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }
}

/// `simulate`: one device, one scenario, one policy — the protocol twin
/// of `rlpm-sim run`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// Scenario name (catalog plus `standby`). Default `video`.
    pub scenario: String,
    /// Policy name. Default `rlpm`.
    pub policy: String,
    /// SoC preset. Default `xu3`.
    pub soc: String,
    /// Simulated seconds. Default 30.
    pub secs: u64,
    /// Seed. Default 42.
    pub seed: u64,
}

/// `train`: train an RL policy and return the serialized artifact — the
/// protocol twin of `rlpm-sim train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Scenario name. Default `mixed`.
    pub scenario: String,
    /// SoC preset. Default `xu3`.
    pub soc: String,
    /// Training episodes. Default 100.
    pub episodes: u32,
    /// Seconds per episode. Default 30.
    pub episode_secs: u64,
    /// Seed. Default 42.
    pub seed: u64,
}

/// `eval`: run a whole experiment sweep and return its headline table —
/// the protocol twin of `regen-tables`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// Experiment id; only `e1` is served today. Default `e1`.
    pub experiment: String,
    /// Quick (CI-sized) configuration instead of the full sweep.
    /// Default `true`.
    pub quick: bool,
}

/// `fleet`: a batched multi-device population — the protocol twin of
/// `rlpm-sim fleet`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Scenario name. Default `idle`.
    pub scenario: String,
    /// Policy name. Default `ondemand`.
    pub policy: String,
    /// SoC preset. Default `xu3`.
    pub soc: String,
    /// Device lanes. Default 256.
    pub lanes: u64,
    /// Simulated seconds per lane. Default 60.
    pub secs: u64,
    /// Seed. Default 42.
    pub seed: u64,
}

/// A validated request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; answered with `hello-ok`.
    Hello {
        /// Protocol version the client speaks.
        version: u64,
    },
    /// Single-device simulation.
    Simulate(SimulateSpec),
    /// RL policy training.
    Train(TrainSpec),
    /// Experiment sweep.
    Eval(EvalSpec),
    /// Batched multi-device simulation.
    Fleet(FleetSpec),
    /// Server and cache health snapshot.
    Status,
    /// Graceful server stop (the connection gets a `result` first).
    Shutdown,
}

impl Request {
    /// The `type` string this request arrived under.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Simulate(_) => "simulate",
            Request::Train(_) => "train",
            Request::Eval(_) => "eval",
            Request::Fleet(_) => "fleet",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One parsed request line: the optional client-chosen `id` (echoed on
/// every response and event) plus the validated body.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client correlation id, echoed verbatim; `null` when absent.
    pub id: Value,
    /// The validated request.
    pub request: Request,
}

/// Extracts the correlation id from a parsed line, tolerating any JSON
/// value (it is echoed, never interpreted).
pub fn request_id(parsed: &Value) -> Value {
    parsed.get("id").cloned().unwrap_or(Value::Null)
}

fn field_str(obj: &Value, key: &str, default: &str) -> Result<String, RequestError> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| RequestError::bad(format!("field {key:?} must be a string"))),
    }
}

fn field_u64(obj: &Value, key: &str, default: u64) -> Result<u64, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            RequestError::bad(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

fn field_bool(obj: &Value, key: &str, default: bool) -> Result<bool, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::bad(format!("field {key:?} must be a boolean"))),
    }
}

/// Validates a parsed JSON line into an [`Envelope`].
///
/// Unknown fields are ignored for forward compatibility; unknown `type`
/// values are [`ErrorCode::UnknownType`]. Catalogue names (scenario,
/// policy, SoC, experiment) are validated later by the service layer,
/// which owns the resolvers.
pub fn parse_request(parsed: &Value) -> Result<Envelope, RequestError> {
    if parsed.as_obj().is_none() {
        return Err(RequestError::bad("request line must be a JSON object"));
    }
    let id = request_id(parsed);
    let type_name = parsed
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| RequestError::bad("missing string field \"type\""))?;
    let request = match type_name {
        "hello" => Request::Hello {
            version: field_u64(parsed, "version", PROTOCOL_VERSION)?,
        },
        "simulate" => Request::Simulate(SimulateSpec {
            scenario: field_str(parsed, "scenario", "video")?,
            policy: field_str(parsed, "policy", "rlpm")?,
            soc: field_str(parsed, "soc", "xu3")?,
            secs: field_u64(parsed, "secs", 30)?,
            seed: field_u64(parsed, "seed", 42)?,
        }),
        "train" => Request::Train(TrainSpec {
            scenario: field_str(parsed, "scenario", "mixed")?,
            soc: field_str(parsed, "soc", "xu3")?,
            episodes: u32::try_from(field_u64(parsed, "episodes", 100)?)
                .map_err(|_| RequestError::bad("field \"episodes\" exceeds u32"))?,
            episode_secs: field_u64(parsed, "episode-secs", 30)?,
            seed: field_u64(parsed, "seed", 42)?,
        }),
        "eval" => Request::Eval(EvalSpec {
            experiment: field_str(parsed, "experiment", "e1")?,
            quick: field_bool(parsed, "quick", true)?,
        }),
        "fleet" => Request::Fleet(FleetSpec {
            scenario: field_str(parsed, "scenario", "idle")?,
            policy: field_str(parsed, "policy", "ondemand")?,
            soc: field_str(parsed, "soc", "xu3")?,
            lanes: field_u64(parsed, "lanes", 256)?,
            secs: field_u64(parsed, "secs", 60)?,
            seed: field_u64(parsed, "seed", 42)?,
        }),
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(RequestError {
                code: ErrorCode::UnknownType,
                message: format!(
                    "unknown request type {other:?} (one of: {})",
                    REQUEST_TYPES.join(", ")
                ),
            })
        }
    };
    Ok(Envelope { id, request })
}

/// A terminal response to one request. Exactly one is written per
/// request line, after any events.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `hello`: the version the server will speak.
    HelloOk {
        /// Server protocol version.
        version: u64,
    },
    /// Success; the payload shape is per-request (see PROTOCOL.md).
    Result {
        /// Request-specific result object.
        payload: Value,
    },
    /// Failure with a machine-readable code.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable one-line explanation.
        message: String,
        /// Optional structured detail (e.g. quarantined cells).
        payload: Option<Value>,
    },
}

impl Response {
    /// The `type` string written on the wire.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Response::HelloOk { .. } => "hello-ok",
            Response::Result { .. } => "result",
            Response::Error { .. } => "error",
        }
    }

    /// Renders the response as one JSON line (no trailing newline),
    /// echoing `id`.
    pub fn render(&self, id: &Value) -> String {
        let mut members = vec![
            ("type".to_string(), Value::str(self.wire_name())),
            ("id".to_string(), id.clone()),
        ];
        match self {
            Response::HelloOk { version } => {
                members.push(("version".to_string(), Value::num_u64(*version)));
            }
            Response::Result { payload } => {
                members.push(("payload".to_string(), payload.clone()));
            }
            Response::Error {
                code,
                message,
                payload,
            } => {
                members.push(("code".to_string(), Value::str(code.wire_name())));
                members.push(("message".to_string(), Value::str(message.clone())));
                if let Some(p) = payload {
                    members.push(("payload".to_string(), p.clone()));
                }
            }
        }
        Value::Obj(members).render()
    }
}

/// A non-terminal event streamed while a request is being served.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The request parsed and was admitted; work is starting.
    Accepted,
    /// Scheduler progress: `done` of `total` jobs in batch `source`.
    Progress {
        /// Batch label (e.g. `e1`).
        source: String,
        /// Jobs finished so far.
        done: u64,
        /// Jobs in the batch.
        total: u64,
    },
}

impl Event {
    /// The `type` string written on the wire.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Event::Accepted => "accepted",
            Event::Progress { .. } => "progress",
        }
    }

    /// Renders the event as one JSON line (no trailing newline),
    /// echoing `id`.
    pub fn render(&self, id: &Value) -> String {
        let mut members = vec![
            ("type".to_string(), Value::str(self.wire_name())),
            ("id".to_string(), id.clone()),
        ];
        if let Event::Progress {
            source,
            done,
            total,
        } = self
        {
            members.push(("source".to_string(), Value::str(source.clone())));
            members.push(("done".to_string(), Value::num_u64(*done)));
            members.push(("total".to_string(), Value::num_u64(*total)));
        }
        Value::Obj(members).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn parse_line(line: &str) -> Result<Envelope, RequestError> {
        match json::parse(line) {
            Ok(v) => parse_request(&v),
            Err(e) => Err(RequestError {
                code: ErrorCode::BadJson,
                message: e.to_string(),
            }),
        }
    }

    /// One representative of every request variant, used to walk the
    /// enum when diffing against the const table.
    fn request_representatives() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Simulate(SimulateSpec {
                scenario: "video".into(),
                policy: "rlpm".into(),
                soc: "xu3".into(),
                secs: 30,
                seed: 42,
            }),
            Request::Train(TrainSpec {
                scenario: "mixed".into(),
                soc: "xu3".into(),
                episodes: 100,
                episode_secs: 30,
                seed: 42,
            }),
            Request::Eval(EvalSpec {
                experiment: "e1".into(),
                quick: true,
            }),
            Request::Fleet(FleetSpec {
                scenario: "idle".into(),
                policy: "ondemand".into(),
                soc: "xu3".into(),
                lanes: 256,
                secs: 60,
                seed: 42,
            }),
            Request::Status,
            Request::Shutdown,
        ]
    }

    #[test]
    fn request_table_matches_enum_both_ways() {
        let names: Vec<&str> = request_representatives()
            .iter()
            .map(Request::wire_name)
            .collect();
        assert_eq!(names, REQUEST_TYPES, "REQUEST_TYPES drifted from enum");
        // Every table entry round-trips through the parser.
        for name in REQUEST_TYPES {
            let parsed = parse_line(&format!("{{\"type\":\"{name}\"}}"));
            assert!(
                parsed.is_ok(),
                "table entry {name:?} does not parse: {parsed:?}"
            );
        }
    }

    #[test]
    fn response_table_matches_enum_both_ways() {
        let reps = [
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::Result {
                payload: Value::Null,
            },
            Response::Error {
                code: ErrorCode::Internal,
                message: String::new(),
                payload: None,
            },
        ];
        let names: Vec<&str> = reps.iter().map(Response::wire_name).collect();
        assert_eq!(names, RESPONSE_TYPES, "RESPONSE_TYPES drifted from enum");
    }

    #[test]
    fn event_table_matches_enum_both_ways() {
        let reps = [
            Event::Accepted,
            Event::Progress {
                source: "e1".into(),
                done: 1,
                total: 2,
            },
        ];
        let names: Vec<&str> = reps.iter().map(Event::wire_name).collect();
        assert_eq!(names, EVENT_TYPES, "EVENT_TYPES drifted from enum");
    }

    #[test]
    fn error_code_table_matches_enum_both_ways() {
        let names: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.wire_name()).collect();
        assert_eq!(names, ERROR_CODES, "ERROR_CODES drifted from enum");
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let env = parse_line("{\"type\":\"simulate\"}");
        assert_eq!(
            env.map(|e| e.request),
            Ok(Request::Simulate(SimulateSpec {
                scenario: "video".into(),
                policy: "rlpm".into(),
                soc: "xu3".into(),
                secs: 30,
                seed: 42,
            }))
        );
        let env = parse_line("{\"type\":\"fleet\"}");
        assert_eq!(
            env.map(|e| e.request),
            Ok(Request::Fleet(FleetSpec {
                scenario: "idle".into(),
                policy: "ondemand".into(),
                soc: "xu3".into(),
                lanes: 256,
                secs: 60,
                seed: 42,
            }))
        );
    }

    #[test]
    fn id_is_echoed_verbatim_and_optional() {
        let line = "{\"type\":\"status\",\"id\":7}";
        let env = parse_line(line);
        assert_eq!(
            env.as_ref().map(|e| &e.id),
            Ok(&Value::Num(7.0)),
            "numeric id preserved"
        );
        let env = parse_line("{\"type\":\"status\"}");
        assert_eq!(env.map(|e| e.id), Ok(Value::Null));
    }

    #[test]
    fn bad_fields_are_bad_request() {
        let env = parse_line("{\"type\":\"simulate\",\"secs\":\"ten\"}");
        assert_eq!(env.err().map(|e| e.code), Some(ErrorCode::BadRequest));
        let env = parse_line("{\"type\":\"simulate\",\"seed\":-1}");
        assert_eq!(env.err().map(|e| e.code), Some(ErrorCode::BadRequest));
        let env = parse_line("[1,2]");
        assert_eq!(env.err().map(|e| e.code), Some(ErrorCode::BadRequest));
        let env = parse_line("{\"type\":\"frobnicate\"}");
        assert_eq!(env.err().map(|e| e.code), Some(ErrorCode::UnknownType));
    }

    #[test]
    fn responses_and_events_render_with_id_first_fields() {
        let id = Value::str("req-1");
        let r = Response::Result {
            payload: Value::Obj(vec![("ok".into(), Value::Bool(true))]),
        };
        assert_eq!(
            r.render(&id),
            "{\"type\":\"result\",\"id\":\"req-1\",\"payload\":{\"ok\":true}}"
        );
        let e = Event::Progress {
            source: "e1".into(),
            done: 3,
            total: 14,
        };
        assert_eq!(
            e.render(&id),
            "{\"type\":\"progress\",\"id\":\"req-1\",\"source\":\"e1\",\"done\":3,\"total\":14}"
        );
        let err = Response::Error {
            code: ErrorCode::UnknownType,
            message: "nope".into(),
            payload: None,
        };
        assert_eq!(
            err.render(&Value::Null),
            "{\"type\":\"error\",\"id\":null,\"code\":\"unknown-type\",\"message\":\"nope\"}"
        );
    }
}

//! A DVFS cluster: a group of identical cores sharing one frequency /
//! voltage domain, a power model and a thermal node.

use simkit::{SimDuration, SimTime};

use crate::{
    ClusterConfig, CompletedJob, CoreModel, IdleDepth, Job, OppLevel, PowerModel, SocError,
};

/// Per-epoch aggregate report for one cluster.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterReport {
    /// Mean busy fraction across cores and sub-steps.
    pub util_avg: f64,
    /// Busy fraction of the busiest core, averaged over sub-steps (what
    /// Linux cpufreq governors act on).
    pub util_max: f64,
    /// Energy consumed this epoch (J), including uncore and transitions.
    pub energy_j: f64,
    /// Junction temperature at the end of the epoch (°C).
    pub temp_c: f64,
    /// OPP level in effect at the end of the epoch.
    pub level: OppLevel,
    /// Number of DVFS transitions performed this epoch.
    pub transitions: u32,
    /// Jobs completed this epoch.
    pub completed: Vec<CompletedJob>,
    /// Queued jobs remaining at the end of the epoch.
    pub queued: usize,
    /// Core-seconds spent clock-gated this epoch (zero without cpuidle).
    pub idle_gated_s: f64,
    /// Core-seconds spent power-collapsed this epoch.
    pub idle_collapsed_s: f64,
}

/// Observation of one cluster handed to governors at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterObservation {
    /// Mean busy fraction across cores and sub-steps.
    pub util_avg: f64,
    /// Busiest-core busy fraction.
    pub util_max: f64,
    /// Current OPP level.
    pub level: OppLevel,
    /// Number of levels in the table.
    pub num_levels: usize,
    /// Current frequency (Hz).
    pub freq_hz: u64,
    /// Minimum and maximum frequency of the table (Hz).
    pub freq_range_hz: (u64, u64),
    /// Junction temperature (°C).
    pub temp_c: f64,
    /// Whether the thermal clamp is engaged.
    pub throttled: bool,
    /// Jobs queued (including in-flight) on the cluster.
    pub queued: usize,
}

/// A group of cores sharing a DVFS domain.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    cores: Vec<CoreModel>,
    /// Number of online cores: cores `[0, online)` execute and draw
    /// power; the tail `[online, len)` is hotplugged out (fully
    /// power-collapsed, zero dynamic and leakage power, queues drained).
    online: usize,
    level: OppLevel,
    /// Stall applied to the next sub-step because of an in-flight
    /// transition.
    pending_stall: SimDuration,
    /// Accumulators for the epoch in progress.
    acc: EpochAcc,
    /// Per-OPP power constants hoisted out of the sub-step loop, indexed
    /// by level. Pure function of `config`; built once in
    /// [`Cluster::new`].
    power_lut: Vec<OppPowerLut>,
    /// One-entry leakage memo keyed on `(level, temp bits)`. Within a
    /// sub-step every core shares the pair, and across idle sub-steps the
    /// temperature often converges exactly; a hit returns the very bits
    /// the cold path would compute. Pure cache — excluded from
    /// `PartialEq`.
    leak_cache: (OppLevel, u64, f64),
}

/// Equality over semantic state only; the memo fields are transparent.
impl PartialEq for Cluster {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.cores == other.cores
            && self.online == other.online
            && self.level == other.level
            && self.pending_stall == other.pending_stall
            && self.acc == other.acc
    }
}

/// Power-model constants for one OPP, precomputed with exactly the
/// expressions [`PowerModel`] uses so reading them back is bit-identical
/// to evaluating per sub-step.
#[derive(Debug, Clone, Copy)]
struct OppPowerLut {
    /// Frequency of the OPP (Hz).
    freq_hz: u64,
    /// `PowerModel::dynamic_w(opp)`.
    dyn_w: f64,
    /// `dyn_w · idle_frac` — the idle clock-tree coefficient.
    idle_coeff: f64,
    /// `PowerModel::uncore_w(opp)`.
    uncore_w: f64,
    /// `leak_w_per_v · V`, the voltage half of the leakage expression.
    leak_base: f64,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct EpochAcc {
    substeps: u32,
    util_avg_sum: f64,
    util_max_sum: f64,
    energy_j: f64,
    transitions: u32,
    completed: Vec<CompletedJob>,
    idle_gated_s: f64,
    idle_collapsed_s: f64,
}

impl Cluster {
    /// Builds a cluster from its configuration, starting at the lowest OPP
    /// with all cores idle.
    pub fn new(config: ClusterConfig) -> Self {
        let cores = (0..config.cores)
            .map(|_| CoreModel::new(config.ipc))
            .collect();
        let power_lut = (0..=config.opps.max_level())
            .map(|level| {
                let opp = config.opps.opp(level);
                OppPowerLut {
                    freq_hz: opp.freq_hz,
                    dyn_w: config.power.dynamic_w(opp),
                    idle_coeff: config.power.dynamic_w(opp) * config.power.idle_frac,
                    uncore_w: config.power.uncore_w(opp),
                    leak_base: config.power.leak_w_per_v * opp.voltage_v,
                }
            })
            .collect();
        let online = config.cores;
        Cluster {
            config,
            cores,
            online,
            level: 0,
            pending_stall: SimDuration::ZERO,
            acc: EpochAcc::default(),
            power_lut,
            leak_cache: (usize::MAX, 0, 0.0),
        }
    }

    /// The precomputed power constants for the current level.
    fn lut(&self) -> OppPowerLut {
        // xtask-allow: no-panic-lib -- `level` is range-checked by `set_level` and only ever lowered by the thermal clamp
        self.power_lut[self.level]
    }

    /// Leakage power at the current level and `temp_c`, through the
    /// one-entry memo.
    fn leakage_memo(&mut self, temp_c: f64) -> f64 {
        let bits = temp_c.to_bits();
        if self.leak_cache.0 == self.level && self.leak_cache.1 == bits {
            return self.leak_cache.2;
        }
        let leak_w = self
            .config
            .power
            .leakage_w_from_base(self.lut().leak_base, temp_c);
        self.leak_cache = (self.level, bits, leak_w);
        leak_w
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current OPP level.
    pub fn level(&self) -> OppLevel {
        self.level
    }

    /// Current frequency in Hz.
    pub fn freq_hz(&self) -> u64 {
        self.config.opps.opp(self.level).freq_hz
    }

    /// Current junction temperature.
    pub fn temp_c(&self) -> f64 {
        self.config.thermal.temp_c()
    }

    /// Whether the thermal clamp is engaged.
    pub fn is_throttled(&self) -> bool {
        self.config.thermal.is_throttled()
    }

    /// Number of cores (physically present, online or not).
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of cores currently online.
    pub fn num_online(&self) -> usize {
        self.online
    }

    /// Hotplugs the cluster to exactly `n` online cores. Queued work on a
    /// core going offline migrates (with its partially-executed remaining
    /// work) to the least-loaded surviving core, so hotplug conserves
    /// work; offline cores are fully power-collapsed (zero dynamic and
    /// leakage power) and their pending wake-up stalls are cancelled.
    /// Returns the previous online count.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidHotplug`] when `n` is zero or exceeds
    /// the physical core count — at least one core must stay online.
    pub fn set_online(&mut self, n: usize, cluster_id: usize) -> Result<usize, SocError> {
        if n == 0 || n > self.cores.len() {
            return Err(SocError::InvalidHotplug {
                cluster: cluster_id,
                requested: n,
                cores: self.cores.len(),
            });
        }
        if n < self.online {
            let (survivors, parked) = self.cores.split_at_mut(n);
            for core in parked.iter_mut() {
                if core.queue_len() > 0 {
                    // Re-pick the target per core: an earlier migration
                    // may have changed who is least loaded.
                    if let Some(target) = survivors
                        .iter_mut()
                        .min_by(|a, b| a.backlog().total_cmp(&b.backlog()))
                    {
                        core.drain_queue_into(target);
                    }
                }
                core.park();
            }
        }
        let prev = self.online;
        self.online = n;
        Ok(prev)
    }

    /// Total queued jobs across cores.
    pub fn queued_jobs(&self) -> usize {
        self.cores.iter().map(CoreModel::queue_len).sum()
    }

    /// Total backlog in reference instructions.
    pub fn backlog(&self) -> f64 {
        self.cores.iter().map(CoreModel::backlog).sum()
    }

    /// Effective capacity at the current OPP (reference instructions per
    /// second across the online cores).
    pub fn capacity_ips(&self) -> f64 {
        self.online as f64 * self.config.ipc * self.freq_hz() as f64
    }

    /// Index of the online core with the smallest backlog.
    pub fn least_loaded_core(&self) -> usize {
        self.cores
            .iter()
            .take(self.online)
            .enumerate()
            .min_by(|(_, a), (_, b)| a.backlog().total_cmp(&b.backlog()))
            .map_or(0, |(i, _)| i)
    }

    /// Enqueues a job on a specific core, charging the cpuidle wake-up
    /// stall if the core was in a deep idle state. An out-of-range or
    /// offline `core` falls back to the least-loaded online core rather
    /// than panicking.
    pub fn enqueue_on(&mut self, core: usize, job: Job) {
        let core = if core < self.online {
            core
        } else {
            self.least_loaded_core()
        };
        if let Some(idle) = &self.config.idle {
            let depth = idle.depth(
                self.cores
                    .get(core)
                    .map_or(SimDuration::ZERO, CoreModel::idle_for),
            );
            if depth != IdleDepth::Active {
                if let Some(c) = self.cores.get_mut(core) {
                    c.wake(idle.wake_latency(depth));
                }
            }
        }
        if let Some(c) = self.cores.get_mut(core) {
            c.enqueue(job);
        }
    }

    /// Requests a new OPP level, applying the thermal clamp. Returns the
    /// level actually set. A change incurs the configured transition
    /// stall and energy at the next sub-step.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::LevelOutOfRange`] if `level` is beyond the
    /// table (clamping to the thermal limit is silent, but a level the
    /// table never had is a caller bug worth surfacing).
    pub fn set_level(&mut self, level: OppLevel, cluster_id: usize) -> Result<OppLevel, SocError> {
        if level > self.config.opps.max_level() {
            return Err(SocError::LevelOutOfRange {
                cluster: cluster_id,
                requested: level,
                available: self.config.opps.len(),
            });
        }
        let clamped = level.min(
            self.config
                .thermal
                .clamp_max_level(self.config.opps.max_level()),
        );
        if clamped != self.level {
            self.level = clamped;
            self.pending_stall = self.config.transition_latency;
            self.acc.energy_j += self.config.power.transition_energy_j;
            self.acc.transitions += 1;
        }
        Ok(self.level)
    }

    /// Advances all cores by one sub-step and integrates power and
    /// temperature.
    ///
    /// This is the simulator's innermost loop: it runs once per cluster
    /// per sub-step (50 000 times per simulated second) and must not
    /// allocate — completions drain into the pooled epoch buffer, busy
    /// fractions fold into scalars, and the per-OPP power constants come
    /// from the lookup table built at construction. Bit-identical to the
    /// pre-optimisation loop (pinned by the golden-output tests).
    pub fn advance_substep(&mut self, start: SimTime, dt: SimDuration) {
        let stall = self.pending_stall.min(dt);
        self.pending_stall = SimDuration::ZERO;
        let lut = self.lut();
        let temp = self.config.thermal.temp_c();
        let dt_s = dt.as_secs_f64();
        // Every core shares (level, temp) this sub-step: evaluate leakage
        // once instead of once per core.
        let leak_w = self.leakage_memo(temp);

        let mut busy_sum = 0.0;
        let mut busy_max = 0.0;
        let mut power_w = lut.uncore_w;
        // xtask-hotpath: begin
        // Offline cores (the tail past `online`) are power-collapsed:
        // they execute nothing, draw nothing, and only their idle
        // residency advances. With every core online the split yields an
        // empty tail and the loop is the pre-hotplug loop, bit for bit.
        let (online_cores, offline_cores) = self.cores.split_at_mut(self.online);
        let acc = &mut self.acc;
        let idle_cfg = self.config.idle.as_ref();
        for core in online_cores.iter_mut() {
            // The cpuidle depth in effect during this sub-step is decided
            // by the residency at its start (waking resets it via
            // `enqueue_on`).
            let depth = idle_cfg
                .map(|idle| idle.depth(core.idle_for()))
                .unwrap_or(IdleDepth::Active);
            let busy = core.advance_into(start, dt, lut.freq_hz, stall, &mut acc.completed);
            let (dyn_scale, leak_scale) = idle_cfg
                .map(|idle| idle.power_scales(depth))
                .unwrap_or((1.0, 1.0));
            power_w += PowerModel::core_w_from_parts(
                lut.dyn_w,
                lut.idle_coeff,
                leak_w,
                busy,
                dyn_scale,
                leak_scale,
            );
            match depth {
                IdleDepth::ClockGated => acc.idle_gated_s += dt_s,
                IdleDepth::Collapsed => acc.idle_collapsed_s += dt_s,
                IdleDepth::Active => {}
            }
            // Same fold order as summing a per-core buffer afterwards.
            busy_sum += busy;
            busy_max = f64::max(busy_max, busy);
        }
        for core in offline_cores.iter_mut() {
            core.note_idle(dt);
        }
        // xtask-hotpath: end

        self.acc.energy_j += power_w * dt_s;
        self.config.thermal.step(power_w, dt);

        // Re-apply the thermal clamp in case the trip point was crossed
        // mid-epoch while running at a now-forbidden level.
        let clamp = self
            .config
            .thermal
            .clamp_max_level(self.config.opps.max_level());
        if self.level > clamp {
            self.level = clamp;
            self.pending_stall = self.config.transition_latency;
            self.acc.energy_j += self.config.power.transition_energy_j;
            self.acc.transitions += 1;
        }

        // Average over *online* cores (offline cores are not schedulable,
        // so they would dilute the load signal governors act on).
        let n = self.online as f64;
        self.acc.util_avg_sum += busy_sum / n;
        self.acc.util_max_sum += busy_max;
        self.acc.substeps += 1;
    }

    /// Whether every core is quiescent: nothing queued anywhere and no
    /// pending wake-up stall, so a sub-step would execute no work. The
    /// SoC's idle fast-forward gates on this.
    pub fn is_quiescent(&self) -> bool {
        self.cores.iter().all(CoreModel::is_quiescent)
    }

    /// Advances `steps` sub-steps of length `dt` through the idle fast
    /// path.
    ///
    /// Callers guarantee [`Cluster::is_quiescent`] holds and that no job
    /// arrives before the skipped sub-step boundaries; under those
    /// conditions this is **bit-identical** to calling
    /// [`Cluster::advance_substep`] `steps` times (a property test pins
    /// the equivalence). With an empty queue the busy fraction is exactly
    /// `+0.0`, so per sub-step only power, temperature, idle residency
    /// and the throttle clamp evolve — the execution loop, arrival
    /// dispatch and utilisation folds (`x += 0.0` on non-negative sums
    /// is a bitwise no-op) all drop out.
    pub fn advance_idle_substeps(&mut self, dt: SimDuration, steps: u64) {
        debug_assert!(self.is_quiescent(), "idle fast-forward on a busy cluster");
        let dt_s = dt.as_secs_f64();
        let max_level = self.config.opps.max_level();
        // The stepped loop zeroes the stall at the top of every sub-step
        // (`stall = pending_stall.min(dt)` only shrinks an execution
        // window no quiescent core uses). Only the thermal clamp re-arms
        // it, so zeroing once up front and re-arming on a last-sub-step
        // clamp (below) leaves the identical exit state.
        self.pending_stall = SimDuration::ZERO;
        // The OPP only changes via the clamp inside this loop: keep the
        // power constants in a register and refresh on clamp instead of
        // re-indexing the table every sub-step.
        let mut lut = self.lut();
        // Run the thermal node and the energy accumulator in locals and
        // write them back once: the sequence of updates is unchanged
        // (`ThermalModel` is `Copy`, including its decay memo), so the
        // results are bit-identical while the loop keeps both out of
        // memory.
        let mut thermal = self.config.thermal;
        let mut energy_j = self.acc.energy_j;
        let idle_cfg = self.config.idle.as_ref();
        let batch_residency = idle_cfg.is_none();
        // Offline cores draw no power; only online cores contribute the
        // per-core idle term (identical to the stepped loop's split).
        let online = self.online;
        // xtask-hotpath: begin
        for i in 0..steps {
            let temp = thermal.temp_c();
            // Straight-line leakage (no memo): the temperature moves
            // every sub-step while idling towards steady state, so the
            // one-entry cache would miss anyway.
            let leak_w = self.config.power.leakage_w_from_base(lut.leak_base, temp);
            let mut power_w = lut.uncore_w;
            match idle_cfg {
                None => {
                    // Every core is Active with scales (1.0, 1.0): the
                    // original loop adds the same per-core term once per
                    // core, in order. Residency is batched after the loop.
                    let term = PowerModel::idle_core_w_from_parts(lut.idle_coeff, leak_w, 1.0, 1.0);
                    for _ in 0..online {
                        power_w += term;
                    }
                }
                Some(idle) => {
                    let acc = &mut self.acc;
                    let (online_cores, offline_cores) = self.cores.split_at_mut(online);
                    for core in online_cores.iter_mut() {
                        let depth = idle.depth(core.idle_for());
                        let (dyn_scale, leak_scale) = idle.power_scales(depth);
                        power_w += PowerModel::idle_core_w_from_parts(
                            lut.idle_coeff,
                            leak_w,
                            dyn_scale,
                            leak_scale,
                        );
                        match depth {
                            IdleDepth::ClockGated => acc.idle_gated_s += dt_s,
                            IdleDepth::Collapsed => acc.idle_collapsed_s += dt_s,
                            IdleDepth::Active => {}
                        }
                        core.note_idle(dt);
                    }
                    for core in offline_cores.iter_mut() {
                        core.note_idle(dt);
                    }
                }
            }

            energy_j += power_w * dt_s;
            thermal.step(power_w, dt);

            // The clamp can engage (or release) mid-fast-forward exactly
            // as it does mid-epoch; a lowered level changes the constants
            // read at the top of the next iteration.
            let clamp = thermal.clamp_max_level(max_level);
            if self.level > clamp {
                self.level = clamp;
                energy_j += self.config.power.transition_energy_j;
                self.acc.transitions += 1;
                lut = self.lut();
                // Mid-batch, the stepped loop would zero the stall again
                // at the next sub-step; only a clamp on the final
                // sub-step leaves it armed for the epoch that follows.
                if i + 1 == steps {
                    self.pending_stall = self.config.transition_latency;
                }
            }
        }
        self.config.thermal = thermal;
        self.acc.energy_j = energy_j;
        if batch_residency {
            // Idle residency is integer nanoseconds, so one batched add
            // equals `steps` per-sub-step adds exactly; without cpuidle
            // states nothing reads it mid-batch.
            let span = dt * steps;
            for core in &mut self.cores {
                core.note_idle(span);
            }
        }
        // xtask-hotpath: end
        self.acc.substeps += steps as u32;
    }

    /// Detaches the state the batched idle kernel needs into a flat
    /// [`IdleDomain`] record, applying the same up-front stall zeroing as
    /// [`Cluster::advance_idle_substeps`] and *draining* the epoch
    /// accumulator's energy and transition counts into the record (the
    /// domain carries them while the lane is parked — possibly across many
    /// epochs — and the per-epoch synthesis reads and clears them exactly
    /// where `end_epoch_into` would). Callers guarantee the cluster is
    /// quiescent with no cpuidle table; [`Cluster::idle_batch_restore`]
    /// writes the evolved state back when the lane unparks.
    pub(crate) fn idle_batch_begin(&mut self, dt: SimDuration) -> IdleDomain {
        debug_assert!(self.is_quiescent(), "idle batch on a busy cluster");
        debug_assert!(self.config.idle.is_none(), "idle batch with cpuidle");
        // Identical to the fast-forward loop: the stall only shrinks an
        // execution window no quiescent core uses, and only a clamp on
        // the final sub-step re-arms it (tracked via `stall_armed`).
        self.pending_stall = SimDuration::ZERO;
        let lut = self.lut();
        let max_level = self.config.opps.max_level();
        // The clamp target while throttled; `level > clamp` fires at most
        // once per parked stay (the clamp never lowers further), so the
        // constants at the clamped level can be staged up front.
        let clamp_level = max_level.saturating_sub(self.config.thermal.throttle_levels);
        // xtask-allow: no-panic-lib -- `clamp_level <= max_level` and the table has `max_level + 1` entries
        let clamp_lut = self.power_lut[clamp_level];
        let energy_j = self.acc.energy_j;
        let transitions = self.acc.transitions;
        self.acc.energy_j = 0.0;
        self.acc.transitions = 0;
        IdleDomain {
            power: self.config.power,
            temp_c: self.config.thermal.temp_c(),
            throttled: self.config.thermal.is_throttled(),
            energy_j,
            uncore_w: lut.uncore_w,
            idle_coeff: lut.idle_coeff,
            leak_base: lut.leak_base,
            ambient_c: self.config.thermal.ambient_c,
            r_th_c_per_w: self.config.thermal.r_th_c_per_w,
            decay: self.config.thermal.decay_for(dt),
            trip_c: self.config.thermal.throttle_temp_c,
            release_c: self.config.thermal.release_temp_c,
            online: self.online as u32,
            level: self.level,
            max_level,
            clamp_level,
            clamp_uncore_w: clamp_lut.uncore_w,
            clamp_idle_coeff: clamp_lut.idle_coeff,
            clamp_leak_base: clamp_lut.leak_base,
            transitions,
            stall_armed: false,
        }
    }

    /// Reattaches a domain when its lane unparks, at an epoch boundary:
    /// thermal state, level, a stall armed by a final-sub-step clamp, and
    /// the idle residency owed for the whole parked stay (`idle_span` =
    /// epochs parked × epoch length; residency is integer nanoseconds, so
    /// one batched add equals the per-epoch adds exactly). The domain's
    /// energy and transition fields are whatever the last epoch synthesis
    /// left un-committed — zero at every epoch boundary — so folding them
    /// back into the (zeroed) accumulator restores the exact state a
    /// looped run would hold at the same boundary.
    pub(crate) fn idle_batch_restore(&mut self, d: &IdleDomain, idle_span: SimDuration) {
        self.config.thermal.restore_batched(d.temp_c, d.throttled);
        self.acc.energy_j += d.energy_j;
        self.acc.transitions += d.transitions;
        self.level = d.level;
        if d.stall_armed {
            self.pending_stall = self.config.transition_latency;
        }
        for core in &mut self.cores {
            core.note_idle(idle_span);
        }
    }

    /// Stages the constants needed to synthesise [`ClusterObservation`]s
    /// for a parked cluster without touching it: everything
    /// [`Cluster::observe`] reads that the [`IdleDomain`] does not carry.
    /// The level while parked is either the entry level or the staged
    /// clamp level, so two frequencies cover every reachable state.
    pub(crate) fn parked_obs_consts(&self) -> ParkedObsConsts {
        let max_level = self.config.opps.max_level();
        let clamp_level = max_level.saturating_sub(self.config.thermal.throttle_levels);
        ParkedObsConsts {
            num_levels: self.config.opps.len(),
            freq_range_hz: (
                self.config.opps.min_freq_hz(),
                self.config.opps.max_freq_hz(),
            ),
            entry_level: self.level,
            entry_freq_hz: self.config.opps.opp(self.level).freq_hz,
            clamp_freq_hz: self.config.opps.opp(clamp_level).freq_hz,
        }
    }

    /// Closes the epoch: returns the aggregate report and clears the
    /// accumulators.
    pub fn end_epoch(&mut self) -> ClusterReport {
        let mut report = ClusterReport::default();
        self.end_epoch_into(&mut report);
        report
    }

    /// [`Cluster::end_epoch`] into a caller-owned report. The
    /// completed-jobs buffer is swapped rather than reallocated, so in a
    /// steady-state epoch loop its capacity shuttles between the
    /// accumulator and the report and the epoch boundary allocates
    /// nothing.
    pub fn end_epoch_into(&mut self, report: &mut ClusterReport) {
        let n = self.acc.substeps.max(1) as f64;
        report.util_avg = self.acc.util_avg_sum / n;
        report.util_max = self.acc.util_max_sum / n;
        report.energy_j = self.acc.energy_j;
        report.temp_c = self.config.thermal.temp_c();
        report.level = self.level;
        report.transitions = self.acc.transitions;
        report.queued = self.queued_jobs();
        report.idle_gated_s = self.acc.idle_gated_s;
        report.idle_collapsed_s = self.acc.idle_collapsed_s;
        report.completed.clear();
        std::mem::swap(&mut report.completed, &mut self.acc.completed);
        self.acc.substeps = 0;
        self.acc.util_avg_sum = 0.0;
        self.acc.util_max_sum = 0.0;
        self.acc.energy_j = 0.0;
        self.acc.transitions = 0;
        self.acc.idle_gated_s = 0.0;
        self.acc.idle_collapsed_s = 0.0;
    }

    /// A snapshot observation for governors.
    pub fn observe(&self, util_avg: f64, util_max: f64) -> ClusterObservation {
        ClusterObservation {
            util_avg,
            util_max,
            level: self.level,
            num_levels: self.config.opps.len(),
            freq_hz: self.freq_hz(),
            freq_range_hz: (
                self.config.opps.min_freq_hz(),
                self.config.opps.max_freq_hz(),
            ),
            temp_c: self.temp_c(),
            throttled: self.is_throttled(),
            queued: self.queued_jobs(),
        }
    }

    /// Clears queues, resets thermal state, brings every core back
    /// online and returns to level 0.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.clear();
        }
        self.config.thermal.reset();
        self.online = self.cores.len();
        self.level = 0;
        self.pending_stall = SimDuration::ZERO;
        self.acc = EpochAcc::default();
    }
}

/// One quiescent cluster's state flattened for the batched idle kernel:
/// the hot scalars [`Cluster::advance_idle_substeps`] keeps in locals,
/// plus the per-OPP constants it reads, detached from the `Cluster` so
/// many domains can advance in one interleaved loop. Produced by
/// [`Cluster::idle_batch_begin`], consumed by [`advance_idle_batch`],
/// written back by [`Cluster::idle_batch_finish`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct IdleDomain {
    /// The cluster's power model — the kernel routes leakage through
    /// [`PowerModel::leakage_w_from_base`] so the expression cannot drift
    /// from the scalar path.
    power: PowerModel,
    /// Junction temperature (the serial dependency chain).
    temp_c: f64,
    /// Epoch energy accumulator, seeded from `acc.energy_j`.
    energy_j: f64,
    /// Throttle hysteresis flag.
    throttled: bool,
    // Constants of the current OPP (refreshed if the clamp fires).
    uncore_w: f64,
    idle_coeff: f64,
    leak_base: f64,
    // Thermal-node constants.
    ambient_c: f64,
    r_th_c_per_w: f64,
    decay: f64,
    trip_c: f64,
    release_c: f64,
    /// Online cores: the per-core idle term is added this many times.
    online: u32,
    level: OppLevel,
    max_level: OppLevel,
    // The staged clamp target and its OPP constants (see
    // `idle_batch_begin`).
    clamp_level: OppLevel,
    clamp_uncore_w: f64,
    clamp_idle_coeff: f64,
    clamp_leak_base: f64,
    /// DVFS transitions performed by the clamp during the batch.
    transitions: u32,
    /// Whether a final-sub-step clamp left the transition stall armed.
    stall_armed: bool,
}

impl IdleDomain {
    /// Whether `set_level(requested)` on the parked cluster would change
    /// nothing — the same clamp-then-compare [`Cluster::set_level`]
    /// performs, evaluated against the domain's thermal state. A request
    /// beyond the table (an error in the scalar path) also reports
    /// `false`, so the lane unparks and surfaces the identical error.
    pub(crate) fn level_request_is_noop(&self, requested: OppLevel) -> bool {
        let clamp_max = if self.throttled {
            self.clamp_level
        } else {
            self.max_level
        };
        requested <= self.max_level && requested.min(clamp_max) == self.level
    }
}

/// Everything [`Cluster::observe`] reads that an [`IdleDomain`] does not
/// carry, staged once when a lane parks. See
/// [`Cluster::parked_obs_consts`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParkedObsConsts {
    num_levels: usize,
    freq_range_hz: (u64, u64),
    entry_level: OppLevel,
    entry_freq_hz: u64,
    clamp_freq_hz: u64,
}

impl ParkedObsConsts {
    /// Synthesises the observation [`Cluster::observe`] would produce for
    /// the parked cluster: level, temperature and throttle state come
    /// from the domain, the table constants from the staged copy, and the
    /// queue is empty by the parked invariant.
    pub(crate) fn observe(
        &self,
        d: &IdleDomain,
        util_avg: f64,
        util_max: f64,
    ) -> ClusterObservation {
        ClusterObservation {
            util_avg,
            util_max,
            level: d.level,
            num_levels: self.num_levels,
            freq_hz: if d.level == self.entry_level {
                self.entry_freq_hz
            } else {
                self.clamp_freq_hz
            },
            freq_range_hz: self.freq_range_hz,
            temp_c: d.temp_c,
            throttled: d.throttled,
            queued: 0,
        }
    }
}

/// Synthesises the report [`Cluster::end_epoch_into`] would produce for a
/// cluster whose entire epoch ran through the idle kernel, and performs
/// the same end-of-epoch accumulator reset on the domain's carried
/// fields. Bit-identical to the scalar epilogue: the utilisation sums of
/// an all-idle epoch are exactly `+0.0` (folding `+0.0` is a bitwise
/// no-op), nothing is queued or completed on a quiescent cluster, and
/// there is no cpuidle residency without a cpuidle table.
pub(crate) fn synth_parked_report(d: &mut IdleDomain, steps: u32, report: &mut ClusterReport) {
    let n = steps.max(1) as f64;
    report.util_avg = 0.0 / n;
    report.util_max = 0.0 / n;
    report.energy_j = d.energy_j;
    report.temp_c = d.temp_c;
    report.level = d.level;
    report.transitions = d.transitions;
    report.queued = 0;
    report.idle_gated_s = 0.0;
    report.idle_collapsed_s = 0.0;
    report.completed.clear();
    // The next resident epoch starts with fresh accumulators, exactly as
    // `end_epoch_into` leaves them. `stall_armed` is NOT cleared here: a
    // final-sub-step clamp must stay visible until the next epoch's
    // pre-pass (which either restores it on unpark or clears it via
    // `IdleDomain::begin_epoch`).
    d.energy_j = 0.0;
    d.transitions = 0;
}

/// Advances `steps` idle sub-steps on every domain in lockstep, opening
/// a fresh epoch on each (the previous epoch's stall flag is discarded at
/// gather, mirroring the up-front `pending_stall` zeroing of
/// [`Cluster::advance_idle_substeps`] — between kernel calls the flag is
/// only consumed by the unpark restore). Per domain this is
/// **bit-identical** to the scalar fast-forward (and therefore to stepped
/// execution): each domain evaluates the same straight-line sequence —
/// leakage from the hoisted base, the per-online-core idle term added in
/// order, energy then the exact-exponential thermal update, then the
/// throttle hysteresis and clamp — only the schedule across (independent)
/// domains changes.
///
/// The schedule is blocked: [`IDLE_BLOCK`] domains at a time are gathered
/// into structure-of-arrays lanes ([`IdleLanes`]), stepped through the
/// whole epoch while the lanes sit in L1, and scattered back. The
/// sub-step loops are fixed-width and branch-free — every conditional
/// update is a lane-wise select that reproduces the branch outcome value
/// exactly — so they vectorise, and the serial per-domain thermal
/// recurrence amortises its latency across the whole block.
pub(crate) fn advance_idle_batch(domains: &mut [IdleDomain], dt: SimDuration, steps: u64) {
    let dt_s = dt.as_secs_f64();
    for block in domains.chunks_mut(IDLE_BLOCK) {
        advance_idle_block(block, dt_s, steps);
    }
}

/// SoA lane width of the batched idle kernel: wide enough that the
/// vectorised sub-step chain amortises its latency across many lanes,
/// small enough that the hot lanes stay in L1.
const IDLE_BLOCK: usize = 32;

/// Structure-of-arrays lanes of one kernel block. Integer and boolean
/// domain state rides in `f64` lanes — the values are small integers and
/// 0.0/1.0 flags, all exactly representable — so every select in the
/// sub-step loop is over one element type and the loops vectorise clean.
struct IdleLanes {
    // Mutable lane state.
    temp_c: [f64; IDLE_BLOCK],
    energy_j: [f64; IDLE_BLOCK],
    throttled: [f64; IDLE_BLOCK],
    uncore_w: [f64; IDLE_BLOCK],
    idle_coeff: [f64; IDLE_BLOCK],
    leak_base: [f64; IDLE_BLOCK],
    level: [f64; IDLE_BLOCK],
    transitions: [f64; IDLE_BLOCK],
    stall_armed: [f64; IDLE_BLOCK],
    // Per-lane constants.
    leak_temp_coeff: [f64; IDLE_BLOCK],
    leak_t_ref_c: [f64; IDLE_BLOCK],
    transition_energy_j: [f64; IDLE_BLOCK],
    ambient_c: [f64; IDLE_BLOCK],
    r_th_c_per_w: [f64; IDLE_BLOCK],
    decay: [f64; IDLE_BLOCK],
    trip_c: [f64; IDLE_BLOCK],
    release_c: [f64; IDLE_BLOCK],
    online: [f64; IDLE_BLOCK],
    max_level: [f64; IDLE_BLOCK],
    clamp_level: [f64; IDLE_BLOCK],
    clamp_uncore_w: [f64; IDLE_BLOCK],
    clamp_idle_coeff: [f64; IDLE_BLOCK],
    clamp_leak_base: [f64; IDLE_BLOCK],
}

/// One gather → step → scatter block of [`advance_idle_batch`]. `block`
/// holds 1..=[`IDLE_BLOCK`] domains; tail lanes are padded with copies of
/// the first domain, stepped like the rest and never written back.
fn advance_idle_block(block: &mut [IdleDomain], dt_s: f64, steps: u64) {
    use std::array::from_fn;
    let n = block.len();
    // xtask-allow: no-panic-lib -- padded gather index is `j < n` or 0, and `chunks_mut` blocks are non-empty
    let at = |j: usize| &block[if j < n { j } else { 0 }];
    let mut l = IdleLanes {
        temp_c: from_fn(|j| at(j).temp_c),
        energy_j: from_fn(|j| at(j).energy_j),
        throttled: from_fn(|j| f64::from(u8::from(at(j).throttled))),
        uncore_w: from_fn(|j| at(j).uncore_w),
        idle_coeff: from_fn(|j| at(j).idle_coeff),
        leak_base: from_fn(|j| at(j).leak_base),
        level: from_fn(|j| at(j).level as f64),
        transitions: from_fn(|j| f64::from(at(j).transitions)),
        // Epoch open: the stall flag from the previous epoch's final
        // sub-step has been consumed by now (see the kernel docs), so
        // every lane starts clear.
        stall_armed: [0.0; IDLE_BLOCK],
        leak_temp_coeff: from_fn(|j| at(j).power.leak_temp_coeff),
        leak_t_ref_c: from_fn(|j| at(j).power.leak_t_ref_c),
        transition_energy_j: from_fn(|j| at(j).power.transition_energy_j),
        ambient_c: from_fn(|j| at(j).ambient_c),
        r_th_c_per_w: from_fn(|j| at(j).r_th_c_per_w),
        decay: from_fn(|j| at(j).decay),
        trip_c: from_fn(|j| at(j).trip_c),
        release_c: from_fn(|j| at(j).release_c),
        online: from_fn(|j| f64::from(at(j).online)),
        max_level: from_fn(|j| at(j).max_level as f64),
        clamp_level: from_fn(|j| at(j).clamp_level as f64),
        clamp_uncore_w: from_fn(|j| at(j).clamp_uncore_w),
        clamp_idle_coeff: from_fn(|j| at(j).clamp_idle_coeff),
        clamp_leak_base: from_fn(|j| at(j).clamp_leak_base),
    };
    let max_online = block.iter().map(|d| d.online).max().unwrap_or(0);
    // Common-case specialisations, both value-preserving: with one online
    // count the add predicates are uniformly true, and with every lane's
    // level at or below both clamp targets the fire block is select-only
    // no-ops for the whole epoch (the clamp never raises a level), so
    // skipping it changes nothing.
    let uniform = block.iter().all(|d| d.online == max_online);
    let no_fire = l
        .level
        .iter()
        .zip(l.clamp_level.iter().zip(&l.max_level))
        .all(|(&level, (&clamp, &max))| level <= clamp.min(max));
    match (uniform, no_fire) {
        (true, true) => idle_substeps::<true, true>(&mut l, dt_s, steps, max_online),
        (true, false) => idle_substeps::<true, false>(&mut l, dt_s, steps, max_online),
        (false, true) => idle_substeps::<false, true>(&mut l, dt_s, steps, max_online),
        (false, false) => idle_substeps::<false, false>(&mut l, dt_s, steps, max_online),
    }
    // Scatter the mutable lane state back; `zip` stops at the real lanes,
    // so the padded tail is never written back.
    for (d, &v) in block.iter_mut().zip(&l.temp_c) {
        d.temp_c = v;
    }
    for (d, &v) in block.iter_mut().zip(&l.energy_j) {
        d.energy_j = v;
    }
    for (d, &v) in block.iter_mut().zip(&l.throttled) {
        d.throttled = v != 0.0;
    }
    for (d, &v) in block.iter_mut().zip(&l.uncore_w) {
        d.uncore_w = v;
    }
    for (d, &v) in block.iter_mut().zip(&l.idle_coeff) {
        d.idle_coeff = v;
    }
    for (d, &v) in block.iter_mut().zip(&l.leak_base) {
        d.leak_base = v;
    }
    // Lossless round-trips: levels and transition counts are small
    // integers, far below `f64`'s exact-integer range.
    for (d, &v) in block.iter_mut().zip(&l.level) {
        d.level = v as OppLevel;
    }
    for (d, &v) in block.iter_mut().zip(&l.transitions) {
        d.transitions = v as u32;
    }
    for (d, &v) in block.iter_mut().zip(&l.stall_armed) {
        d.stall_armed = v != 0.0;
    }
}

/// The vectorised sub-step loop over one [`IdleLanes`] block.
///
/// `UNIFORM` (every lane shares `max_online`) drops the per-core add
/// predicates; `NO_FIRE` (no lane's level exceeds a clamp target) drops
/// the clamp block. Both are pure specialisations — see
/// [`advance_idle_block`].
#[allow(clippy::needless_range_loop)] // fixed-width lane loops vectorise as written
fn idle_substeps<const UNIFORM: bool, const NO_FIRE: bool>(
    l: &mut IdleLanes,
    dt_s: f64,
    steps: u64,
    max_online: u32,
) {
    const B: usize = IDLE_BLOCK;
    // xtask-allow-region: no-panic-lib -- every index is `j < B` into `[f64; B]` lanes (or a fixed `[0.0; B]` scratch): statically in bounds
    // xtask-hotpath: begin
    for i in 0..steps {
        let last = if i + 1 == steps { 1.0f64 } else { 0.0 };
        let mut term = [0.0; B];
        let mut power_w = [0.0; B];
        for j in 0..B {
            let leak_w = PowerModel::leakage_w_from_parts(
                l.leak_base[j],
                l.temp_c[j],
                l.leak_temp_coeff[j],
                l.leak_t_ref_c[j],
            );
            term[j] = PowerModel::idle_core_w_from_parts(l.idle_coeff[j], leak_w, 1.0, 1.0);
            power_w[j] = l.uncore_w[j];
        }
        // The scalar path adds the idle term once per online core; the
        // predicated add replays that exact chain lane-wise (a discarded
        // `power + term` has no effect) with a uniform trip count.
        for c in 0..max_online {
            let c_f = f64::from(c);
            for j in 0..B {
                power_w[j] = if UNIFORM || c_f < l.online[j] {
                    power_w[j] + term[j]
                } else {
                    power_w[j]
                };
            }
        }
        for j in 0..B {
            l.energy_j[j] += power_w[j] * dt_s;
            // `ThermalModel::step` with the decay factor hoisted: the
            // steady-state temperature, the exact exponential relaxation,
            // then the trip/release hysteresis.
            let t_inf = l.ambient_c[j] + power_w[j] * l.r_th_c_per_w[j];
            l.temp_c[j] = t_inf + (l.temp_c[j] - t_inf) * l.decay[j];
            l.throttled[j] = if l.temp_c[j] >= l.trip_c[j] {
                1.0
            } else if l.temp_c[j] <= l.release_c[j] {
                0.0
            } else {
                l.throttled[j]
            };
        }
        if NO_FIRE {
            continue;
        }
        for j in 0..B {
            let clamp = if l.throttled[j] != 0.0 {
                l.clamp_level[j]
            } else {
                l.max_level[j]
            };
            let fire = l.level[j] > clamp;
            l.level[j] = if fire { clamp } else { l.level[j] };
            // The energy accumulator is a sum of non-negative terms, so
            // the discarded branch adds `+0.0` — exact — and the lane
            // stays select-only.
            l.energy_j[j] += if fire { l.transition_energy_j[j] } else { 0.0 };
            l.transitions[j] += if fire { 1.0 } else { 0.0 };
            l.uncore_w[j] = if fire {
                l.clamp_uncore_w[j]
            } else {
                l.uncore_w[j]
            };
            l.idle_coeff[j] = if fire {
                l.clamp_idle_coeff[j]
            } else {
                l.idle_coeff[j]
            };
            l.leak_base[j] = if fire {
                l.clamp_leak_base[j]
            } else {
                l.leak_base[j]
            };
            // Mid-batch the stepped loop would zero the stall at the next
            // sub-step; only a final-sub-step clamp leaves it armed for
            // the epoch that follows.
            l.stall_armed[j] = if fire {
                last.max(l.stall_armed[j])
            } else {
                l.stall_armed[j]
            };
        }
    }
    // xtask-hotpath: end
    // xtask-allow-region: end no-panic-lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobClass, SocConfig};

    fn test_cluster() -> Cluster {
        Cluster::new(SocConfig::tiny_test().unwrap().clusters[0].clone())
    }

    fn job(id: u64, work: u64) -> Job {
        Job::new(id, work, SimTime::from_millis(50), JobClass::Normal)
    }

    #[test]
    fn starts_at_level_zero_idle() {
        let c = test_cluster();
        assert_eq!(c.level(), 0);
        assert_eq!(c.freq_hz(), 200_000_000);
        assert_eq!(c.queued_jobs(), 0);
        assert!(!c.is_throttled());
    }

    #[test]
    fn set_level_changes_frequency_and_counts_transition() {
        let mut c = test_cluster();
        let set = c.set_level(2, 0).unwrap();
        assert_eq!(set, 2);
        assert_eq!(c.freq_hz(), 1_000_000_000);
        c.advance_substep(SimTime::ZERO, SimDuration::from_millis(1));
        let report = c.end_epoch();
        assert_eq!(report.transitions, 1);
    }

    #[test]
    fn set_same_level_is_free() {
        let mut c = test_cluster();
        c.set_level(0, 0).unwrap();
        c.advance_substep(SimTime::ZERO, SimDuration::from_millis(1));
        let report = c.end_epoch();
        assert_eq!(report.transitions, 0);
    }

    #[test]
    fn set_level_out_of_range_errors() {
        let mut c = test_cluster();
        assert!(matches!(
            c.set_level(3, 7),
            Err(SocError::LevelOutOfRange {
                cluster: 7,
                requested: 3,
                available: 3
            })
        ));
    }

    #[test]
    fn executes_work_and_reports_utilization() {
        let mut c = test_cluster();
        c.set_level(2, 0).unwrap(); // 1 GHz
                                    // 0.5 ms of work on core 0 only.
        c.enqueue_on(0, job(1, 500_000));
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            c.advance_substep(t, SimDuration::from_millis(1));
            t += SimDuration::from_millis(1);
        }
        let report = c.end_epoch();
        assert_eq!(report.completed.len(), 1);
        // Busy 0.5ms of 20ms on one of two cores.
        assert!(
            (report.util_avg - 0.0125).abs() < 1e-3,
            "util_avg {}",
            report.util_avg
        );
        assert!(
            (report.util_max - 0.025).abs() < 2e-3,
            "util_max {}",
            report.util_max
        );
        assert!(report.energy_j > 0.0);
    }

    #[test]
    fn energy_grows_with_load_and_level() {
        let run = |level: OppLevel, with_work: bool| -> f64 {
            let mut c = test_cluster();
            c.set_level(level, 0).unwrap();
            let mut t = SimTime::ZERO;
            // Settle the transition before measuring.
            c.advance_substep(t, SimDuration::from_millis(1));
            t += SimDuration::from_millis(1);
            c.end_epoch();
            if with_work {
                c.enqueue_on(0, job(1, u64::MAX / 4));
                c.enqueue_on(1, job(2, u64::MAX / 4));
            }
            for _ in 0..20 {
                c.advance_substep(t, SimDuration::from_millis(1));
                t += SimDuration::from_millis(1);
            }
            c.end_epoch().energy_j
        };
        let idle_low = run(0, false);
        let idle_high = run(2, false);
        let busy_low = run(0, true);
        let busy_high = run(2, true);
        assert!(
            idle_low < idle_high,
            "higher OPP leaks/clocks more even idle"
        );
        assert!(busy_low > idle_low);
        assert!(
            busy_high > busy_low,
            "busy at high OPP is the most expensive"
        );
    }

    #[test]
    fn least_loaded_core_tracks_backlog() {
        let mut c = test_cluster();
        assert_eq!(c.least_loaded_core(), 0, "tie breaks to first core");
        c.enqueue_on(0, job(1, 1_000_000));
        assert_eq!(c.least_loaded_core(), 1);
        c.enqueue_on(1, job(2, 2_000_000));
        assert_eq!(c.least_loaded_core(), 0);
    }

    #[test]
    fn thermal_clamp_limits_level_mid_epoch() {
        let mut cfg = SocConfig::tiny_test().unwrap().clusters[0].clone();
        // A thermal model that trips almost immediately under load.
        cfg.thermal = crate::ThermalModel::new(50.0, 0.01, 25.0, 40.0, 35.0, 2);
        let mut c = Cluster::new(cfg);
        c.set_level(2, 0).unwrap();
        c.enqueue_on(0, job(1, u64::MAX / 4));
        c.enqueue_on(1, job(2, u64::MAX / 4));
        let mut t = SimTime::ZERO;
        for _ in 0..400 {
            c.advance_substep(t, SimDuration::from_millis(1));
            t += SimDuration::from_millis(1);
        }
        assert!(c.is_throttled());
        assert_eq!(c.level(), 0, "clamp removed 2 of 3 levels");
        // Requesting the top level while throttled silently clamps.
        let set = c.set_level(2, 0).unwrap();
        assert_eq!(set, 0);
    }

    #[test]
    fn reset_restores_cold_idle_state() {
        let mut c = test_cluster();
        c.set_level(2, 0).unwrap();
        c.enqueue_on(0, job(1, 1_000_000_000));
        for i in 0..100 {
            c.advance_substep(SimTime::from_millis(i), SimDuration::from_millis(1));
        }
        c.reset();
        assert_eq!(c.level(), 0);
        assert_eq!(c.queued_jobs(), 0);
        assert_eq!(c.temp_c(), c.config().thermal.ambient_c);
    }

    #[test]
    fn observation_reflects_state() {
        let mut c = test_cluster();
        c.set_level(1, 0).unwrap();
        c.enqueue_on(0, job(1, 10_000_000_000));
        let obs = c.observe(0.4, 0.8);
        assert_eq!(obs.level, 1);
        assert_eq!(obs.freq_hz, 600_000_000);
        assert_eq!(obs.num_levels, 3);
        assert_eq!(obs.queued, 1);
        assert_eq!(obs.util_avg, 0.4);
        assert_eq!(obs.util_max, 0.8);
        assert_eq!(obs.freq_range_hz, (200_000_000, 1_000_000_000));
    }

    #[test]
    fn cpuidle_cuts_idle_power_after_residency() {
        let mk = |idle: Option<crate::IdleStates>| {
            let mut cfg = SocConfig::tiny_test().unwrap().clusters[0].clone();
            cfg.idle = idle;
            Cluster::new(cfg)
        };
        let run_idle_epochs = |c: &mut Cluster, epochs: usize| -> f64 {
            let mut t = SimTime::ZERO;
            let mut total = 0.0;
            for _ in 0..epochs {
                for _ in 0..20 {
                    c.advance_substep(t, SimDuration::from_millis(1));
                    t += SimDuration::from_millis(1);
                }
                total += c.end_epoch().energy_j;
            }
            total
        };
        let mut plain = mk(None);
        let mut cstates = mk(Some(crate::IdleStates::mobile_cpuidle()));
        let e_plain = run_idle_epochs(&mut plain, 50);
        let e_cstates = run_idle_epochs(&mut cstates, 50);
        assert!(
            e_cstates < 0.7 * e_plain,
            "idle energy with C-states {e_cstates} vs without {e_plain}"
        );
    }

    #[test]
    fn cpuidle_reports_residency_and_charges_wakeup() {
        let mut cfg = SocConfig::tiny_test().unwrap().clusters[0].clone();
        cfg.idle = Some(crate::IdleStates::mobile_cpuidle());
        let mut c = Cluster::new(cfg);
        // Stay idle for 30 ms: both cores pass gate (1 ms) and collapse
        // (10 ms) thresholds.
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            c.advance_substep(t, SimDuration::from_millis(1));
            t += SimDuration::from_millis(1);
        }
        let report = c.end_epoch();
        assert!(report.idle_gated_s > 0.0, "gated residency recorded");
        assert!(
            report.idle_collapsed_s > 0.0,
            "collapsed residency recorded"
        );

        // Wake with a short job: the 150 us collapse wake-up delays its
        // completion relative to a cluster without C-states.
        c.enqueue_on(0, job(1, 200_000)); // 1 ms at 200 MHz
        c.advance_substep(t, SimDuration::from_millis(1));
        t += SimDuration::from_millis(1);
        c.advance_substep(t, SimDuration::from_millis(1));
        let report = c.end_epoch();
        let done = &report.completed[0];
        // 30 ms idle + 150 us wake + 1 ms execute.
        assert!(
            done.completed_at >= SimTime::from_micros(31_150),
            "completed at {} without the wake-up stall",
            done.completed_at
        );
    }

    #[test]
    fn cpuidle_active_cluster_pays_no_wake_penalty() {
        let mut cfg = SocConfig::tiny_test().unwrap().clusters[0].clone();
        cfg.idle = Some(crate::IdleStates::mobile_cpuidle());
        let mut c = Cluster::new(cfg);
        // Enqueue immediately: core never entered an idle state.
        c.enqueue_on(0, job(1, 200_000));
        c.advance_substep(SimTime::ZERO, SimDuration::from_millis(1));
        let report = c.end_epoch();
        assert_eq!(report.completed[0].completed_at, SimTime::from_millis(1));
        assert_eq!(report.idle_gated_s, 0.0);
    }

    #[test]
    fn hotplug_migrates_work_and_cuts_power() {
        let mut c = test_cluster();
        c.enqueue_on(1, job(1, 5_000_000));
        let backlog = c.backlog();
        c.set_online(1, 0).unwrap();
        assert_eq!(c.num_online(), 1);
        assert_eq!(c.backlog(), backlog, "hotplug conserves queued work");
        assert_eq!(c.queued_jobs(), 1, "job migrated to the survivor");
        // The offline core draws nothing: idle power halves (modulo
        // uncore, which is shared).
        let idle_power = |c: &mut Cluster| {
            let mut t = SimTime::ZERO;
            for _ in 0..20 {
                c.advance_substep(t, SimDuration::from_millis(1));
                t += SimDuration::from_millis(1);
            }
            c.end_epoch().energy_j
        };
        let mut full = test_cluster();
        let e_full = idle_power(&mut full);
        let mut half = test_cluster();
        half.set_online(1, 0).unwrap();
        let e_half = idle_power(&mut half);
        assert!(
            e_half < e_full,
            "offline core must not draw power: {e_half} vs {e_full}"
        );
    }

    #[test]
    fn hotplug_rejects_zero_and_overflow() {
        let mut c = test_cluster();
        assert!(matches!(
            c.set_online(0, 3),
            Err(SocError::InvalidHotplug {
                cluster: 3,
                requested: 0,
                cores: 2
            })
        ));
        assert!(c.set_online(5, 0).is_err());
        assert_eq!(c.num_online(), 2, "failed hotplug leaves state intact");
    }

    #[test]
    fn hotplug_redirects_enqueue_and_reset_reonlines() {
        let mut c = test_cluster();
        c.set_online(1, 0).unwrap();
        // Targeting the offline core lands on the online one.
        c.enqueue_on(1, job(1, 1_000));
        assert_eq!(c.least_loaded_core(), 0);
        assert_eq!(c.queued_jobs(), 1);
        let full_capacity = test_cluster().capacity_ips();
        assert_eq!(c.capacity_ips(), full_capacity / 2.0);
        c.reset();
        assert_eq!(c.num_online(), 2);
    }

    #[test]
    fn capacity_scales_with_level() {
        let mut c = test_cluster();
        let low = c.capacity_ips();
        c.set_level(2, 0).unwrap();
        assert_eq!(
            c.capacity_ips(),
            low * 5.0,
            "1 GHz vs 200 MHz, 2 cores, ipc 1"
        );
    }
}

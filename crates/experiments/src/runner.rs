//! The closed control loop: scenario → SoC → QoS accounting → governor.

use governors::{Governor, QosFeedback, SystemState};
use simkit::trace::Trace;
use simkit::{obs, FaultCounts, SimDuration, SimTime};
use soc::{DeviceBatch, LevelRequest, Soc};
use workload::{QosReport, QosTracker, Scenario};

use crate::resilience::FaultHarness;

/// Closed-loop runs completed in this process.
static RUNS: obs::Counter = obs::Counter::new("runner.runs");
/// Headline metric of the most recent completed run (J per QoS unit).
static LAST_ENERGY_PER_QOS: obs::Gauge = obs::Gauge::new("runner.last_energy_per_qos");

/// Parameters of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Record a per-epoch trace (frequency levels, power, QoS) for
    /// figure regeneration. Costs memory proportional to epochs.
    pub record_trace: bool,
}

impl RunConfig {
    /// A run of the given number of simulated seconds, without tracing.
    pub fn seconds(secs: u64) -> Self {
        RunConfig {
            duration: SimDuration::from_secs(secs),
            record_trace: false,
        }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Total energy (J).
    pub energy_j: f64,
    /// Final QoS accounting.
    pub qos: QosReport,
    /// The headline metric: energy per delivered QoS unit (J/unit).
    pub energy_per_qos: f64,
    /// Mean power draw (W).
    pub avg_power_w: f64,
    /// DVFS transitions performed.
    pub transitions: u64,
    /// Epochs simulated.
    pub epochs: u64,
    /// Jobs submitted by the scenario.
    pub jobs_submitted: u64,
    /// Mean per-cluster frequency level over the run, normalised to
    /// `[0, 1]` of each table.
    pub mean_level_frac: Vec<f64>,
    /// Core-seconds spent clock-gated (zero unless the SoC has cpuidle).
    pub idle_gated_core_s: f64,
    /// Core-seconds spent power-collapsed.
    pub idle_collapsed_core_s: f64,
    /// Epochs a watchdog fallback decided instead of the primary policy
    /// (zero without a fault harness or watchdog).
    pub watchdog_engagements: u64,
    /// Fault events injected during the run (zero without a harness).
    pub fault_counts: FaultCounts,
    /// Q-table SEUs the governor's recovery machinery detected.
    pub seus_detected: u64,
    /// Q-table reloads performed to recover from detected SEUs.
    pub table_reloads: u64,
    /// Optional per-epoch trace: columns `level_<cluster>`,
    /// `util_<cluster>`, `power_w`, `qos_units`.
    pub trace: Option<Trace>,
}

/// Runs `governor` on `scenario` for `config.duration`, starting from the
/// SoC's current state (callers reset the SoC for independent runs; the
/// training loop deliberately does not).
///
/// The loop matches the paper's control structure: at each epoch boundary
/// the governor observes the epoch just finished (utilisation, energy,
/// QoS feedback) and sets levels for the next epoch. The first epoch runs
/// at the lowest OPP.
pub fn run(
    soc: &mut Soc,
    scenario: &mut dyn Scenario,
    governor: &mut dyn Governor,
    config: RunConfig,
) -> RunMetrics {
    run_with_faults(soc, scenario, governor, config, None)
}

/// [`run`], with an optional fault harness injecting the deterministic
/// fault schedule described in `DESIGN.md` ("Robustness & fault model").
///
/// `None` is exactly [`run`]: the fault dispatch is skipped entirely, so
/// the output is bit-identical to the fault-free path. A harness whose
/// rates are all zero also reproduces the fault-free run bit-for-bit
/// (its plan draws nothing — see [`simkit::FaultPlan`]).
pub fn run_with_faults(
    soc: &mut Soc,
    scenario: &mut dyn Scenario,
    governor: &mut dyn Governor,
    config: RunConfig,
    mut faults: Option<&mut FaultHarness>,
) -> RunMetrics {
    let epoch = soc.config().epoch;
    // A duration shorter than one epoch saturates to a single epoch: the
    // control loop's unit of progress is the epoch, so the shortest
    // meaningful run is one of them.
    let epochs = (config.duration / epoch).max(1);
    let num_clusters = soc.config().clusters.len();

    let mut tracker = QosTracker::new(scenario.qos_spec());
    let mut request = LevelRequest::new(soc.clusters().iter().map(|c| c.level()).collect());
    let mut transitions = 0u64;
    let mut level_frac_sum = vec![0.0f64; num_clusters];
    let mut idle_gated_core_s = 0.0f64;
    let mut idle_collapsed_core_s = 0.0f64;
    let started_at = soc.now();
    let start_energy = soc.total_energy_j();
    let start_jobs = soc.jobs_submitted();
    let mut trace = config.record_trace.then(|| {
        let mut columns: Vec<String> = Vec::new();
        for c in 0..num_clusters {
            columns.push(format!("level_{c}"));
        }
        for c in 0..num_clusters {
            columns.push(format!("util_{c}"));
        }
        columns.push("power_w".into());
        columns.push("qos_units".into());
        Trace::new("run", columns)
    });

    let mut prev_snapshot = tracker.snapshot();
    // Reused across epochs: the report's per-cluster slots (and their
    // completed-job pools) and the observation's cluster buffer keep
    // their capacity, so the steady-state loop does not allocate.
    let mut report = soc::EpochReport {
        started_at: soc.now(),
        ended_at: soc.now(),
        clusters: Vec::new(),
        energy_j: 0.0,
    };
    let mut state = SystemState::new(
        soc::EpochObservation {
            at: soc.now(),
            clusters: Vec::new(),
            energy_j: 0.0,
        },
        QosFeedback::default(),
    );
    let mut epochs_done = 0u64;
    let _run_span = obs::span!("runner.run");
    for _ in 0..epochs {
        // xtask-hotpath: begin (per-epoch fault application, no allocation)
        if let Some(harness) = faults.as_deref_mut() {
            harness.begin_epoch(soc, &mut request);
        }
        // xtask-hotpath: end

        // Feed the next epoch's arrivals before running it.
        let from = soc.now();
        let to = from + epoch;
        for (at, job) in scenario.arrivals(from, to) {
            soc.schedule_job(at, job);
        }

        // The request is validated by construction (governors and the
        // fault harness only produce in-range levels); a rejection ends
        // the run with metrics covering the completed epochs.
        let Ok(()) = soc.run_epoch_into(&request, &mut report) else {
            break;
        };
        epochs_done += 1;
        tracker.observe_all(report.completed());
        let snapshot = tracker.snapshot();
        let epoch_units = snapshot.units - prev_snapshot.units;
        let epoch_max_units = snapshot.max_units - prev_snapshot.max_units;
        let epoch_violations = snapshot.violations - prev_snapshot.violations;
        prev_snapshot = snapshot;
        // Per-epoch QoS ratio: a cumulative ratio would let one bad epoch
        // poison the state signal for the rest of the episode.
        let epoch_qos_ratio = if epoch_max_units > 0.0 {
            (epoch_units / epoch_max_units).clamp(0.0, 1.0)
        } else {
            1.0
        };

        for ((r, cluster), frac) in report
            .clusters
            .iter()
            .zip(&soc.config().clusters)
            .zip(level_frac_sum.iter_mut())
        {
            transitions += u64::from(r.transitions);
            let max_level = cluster.opps.max_level().max(1);
            *frac += r.level as f64 / max_level as f64;
            idle_gated_core_s += r.idle_gated_s;
            idle_collapsed_core_s += r.idle_collapsed_s;
        }

        soc.observe_into(&report, &mut state.soc);
        state.qos = QosFeedback {
            qos_ratio: epoch_qos_ratio,
            units: epoch_units,
            violations: epoch_violations,
            pending_jobs: soc.queued_jobs(),
        };
        if let Some(trace) = trace.as_mut() {
            let mut row: Vec<f64> = Vec::with_capacity(2 * num_clusters + 2);
            for r in &report.clusters {
                row.push(r.level as f64);
            }
            for r in &report.clusters {
                row.push(r.util_max);
            }
            row.push(report.energy_j / epoch.as_secs_f64());
            row.push(epoch_units);
            trace.record(report.ended_at, row);
        }
        // The guard drops at the end of the loop body, so the span times
        // exactly the governor dispatch below.
        let _decide_span = obs::span!("runner.decide");
        // xtask-hotpath: begin (per-epoch decision dispatch, no allocation)
        match faults.as_deref_mut() {
            Some(harness) => {
                harness.decide(governor, &mut state, &mut request);
            }
            None => governor.decide_into(&state, &mut request),
        }
        // xtask-hotpath: end
    }

    let energy_j = soc.total_energy_j() - start_energy;
    let unfinished = soc.queued_jobs() + soc.pending_arrivals();
    let qos = tracker.finalize(unfinished);
    let wall = (soc.now() - started_at).as_secs_f64();
    let (seus_detected, table_reloads) = governor.seu_recovery_counts();
    let (watchdog_engagements, fault_counts) = match faults {
        Some(harness) => (harness.watchdog_engagements(), *harness.counts()),
        None => (0, FaultCounts::default()),
    };
    RUNS.inc();
    LAST_ENERGY_PER_QOS.set(qos.energy_per_qos(energy_j));

    RunMetrics {
        energy_j,
        energy_per_qos: qos.energy_per_qos(energy_j),
        qos,
        avg_power_w: if wall > 0.0 { energy_j / wall } else { 0.0 },
        transitions,
        epochs: epochs_done,
        jobs_submitted: soc.jobs_submitted() - start_jobs,
        mean_level_frac: level_frac_sum
            .iter()
            .map(|s| s / epochs_done.max(1) as f64)
            .collect(),
        idle_gated_core_s,
        idle_collapsed_core_s,
        watchdog_engagements,
        fault_counts,
        seus_detected,
        table_reloads,
        trace,
    }
}

/// Typed rejection of a fleet-wide fault request (see
/// [`ensure_fleet_faults_supported`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultsUnsupported {
    /// The requested fleet-wide fault-rate scale.
    pub scale: f64,
}

impl std::fmt::Display for FleetFaultsUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet-wide fault injection (fault scale {}) is not supported: \
             the fleet path shares one scenario stream across lanes and has \
             no per-lane fault harness or watchdog; a faulted lane would \
             also disable idle parking and void the fleet-rate accounting. \
             Use `e9` for fault studies, or fault scale 0 (bit-identical \
             to the fault-free fleet).",
            self.scale
        )
    }
}

impl std::error::Error for FleetFaultsUnsupported {}

/// Validates a fleet-wide fault-rate scale for the batched fleet path.
///
/// The fleet path deliberately wires [`BatchLane::faults`] to `None`,
/// so a non-zero request must fail loudly instead of silently
/// simulating fault-free: anything other than exactly `0.0` returns a
/// typed [`FleetFaultsUnsupported`] error.
///
/// # Errors
///
/// Returns [`FleetFaultsUnsupported`] for any non-zero (or non-finite)
/// `scale`.
pub fn ensure_fleet_faults_supported(scale: f64) -> Result<(), FleetFaultsUnsupported> {
    if scale == 0.0 && scale.is_sign_positive() {
        Ok(())
    } else {
        Err(FleetFaultsUnsupported { scale })
    }
}

/// One device lane of a batched run: the workload feeding it, the policy
/// driving it, and an optional per-lane fault harness.
///
/// Lanes are fully independent — each owns its scenario RNG stream,
/// governor state and fault schedule, exactly as a standalone [`run`]
/// would.
pub struct BatchLane {
    /// Produces this lane's job arrivals and QoS spec.
    pub scenario: Box<dyn Scenario>,
    /// Decides this lane's per-epoch frequency levels.
    pub governor: Box<dyn Governor>,
    /// Optional deterministic fault injection for this lane.
    pub faults: Option<FaultHarness>,
}

impl std::fmt::Debug for BatchLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchLane")
            .field("scenario", &self.scenario.name())
            .field("governor", &self.governor.name())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

/// Per-lane bookkeeping for [`run_batch`]: the locals of one [`run`]
/// call, boxed up so N of them can advance in lockstep.
struct LaneState {
    tracker: QosTracker,
    prev_snapshot: QosReport,
    state: SystemState,
    transitions: u64,
    level_frac_sum: Vec<f64>,
    /// Per-cluster `opps.max_level().max(1)`, cached so the per-epoch
    /// fold does not walk the SoC config.
    max_levels: Vec<usize>,
    idle_gated_core_s: f64,
    idle_collapsed_core_s: f64,
    started_at: SimTime,
    start_energy: f64,
    start_jobs: u64,
    epochs_done: u64,
    trace: Option<Trace>,
}

/// Runs every lane of `batch` for `config.duration` in lockstep,
/// returning one [`RunMetrics`] per lane.
///
/// Each lane executes exactly the control loop of
/// [`run_with_faults`] — same arrival windows, same epoch sequence, same
/// accounting — so lane `i`'s metrics are **bit-identical** to running
/// `lanes[i]` alone against `batch.lane(i)`. The batch merely reorders
/// work across independent lanes so that fully-idle epochs from many
/// devices collapse into one interleaved kernel dispatch
/// (see [`DeviceBatch`]); `golden_bits` pins the equivalence end-to-end.
///
/// A lane whose epoch is rejected (an out-of-range level request) stops
/// early with metrics covering its completed epochs, exactly as [`run`]
/// breaks; the other lanes keep going.
///
/// # Panics
///
/// Panics if `lanes` and `batch` disagree on lane count.
pub fn run_batch(
    batch: &mut DeviceBatch,
    lanes: &mut [BatchLane],
    config: RunConfig,
) -> Vec<RunMetrics> {
    let n = batch.len();
    assert_eq!(
        lanes.len(),
        n,
        "one BatchLane per device lane ({} lanes, {} BatchLanes)",
        n,
        lanes.len()
    );
    if n == 0 {
        return Vec::new();
    }
    let epoch = batch.lane(0).config().epoch;
    let epochs = (config.duration / epoch).max(1);

    let mut active = vec![true; n];
    let mut requests: Vec<LevelRequest> = Vec::with_capacity(n);
    let mut reports: Vec<soc::EpochReport> = Vec::with_capacity(n);
    let mut states: Vec<LaneState> = Vec::with_capacity(n);
    for (i, lane) in lanes.iter().enumerate() {
        let soc = batch.lane(i);
        let num_clusters = soc.config().clusters.len();
        let tracker = QosTracker::new(lane.scenario.qos_spec());
        requests.push(LevelRequest::new(
            soc.clusters().iter().map(|c| c.level()).collect(),
        ));
        reports.push(soc::EpochReport {
            started_at: soc.now(),
            ended_at: soc.now(),
            clusters: Vec::new(),
            energy_j: 0.0,
        });
        states.push(LaneState {
            prev_snapshot: tracker.snapshot(),
            tracker,
            state: SystemState::new(
                soc::EpochObservation {
                    at: soc.now(),
                    clusters: Vec::new(),
                    energy_j: 0.0,
                },
                QosFeedback::default(),
            ),
            transitions: 0,
            level_frac_sum: vec![0.0; num_clusters],
            max_levels: soc
                .config()
                .clusters
                .iter()
                .map(|c| c.opps.max_level().max(1))
                .collect(),
            idle_gated_core_s: 0.0,
            idle_collapsed_core_s: 0.0,
            started_at: soc.now(),
            start_energy: soc.total_energy_j(),
            start_jobs: soc.jobs_submitted(),
            epochs_done: 0,
            trace: config.record_trace.then(|| {
                let mut columns: Vec<String> = Vec::new();
                for c in 0..num_clusters {
                    columns.push(format!("level_{c}"));
                }
                for c in 0..num_clusters {
                    columns.push(format!("util_{c}"));
                }
                columns.push("power_w".into());
                columns.push("qos_units".into());
                Trace::new("run", columns)
            }),
        });
    }

    let _run_span = obs::span!("runner.run_batch");
    for _ in 0..epochs {
        // Pre-step pass: per-lane fault application and arrival feeding,
        // in lane order. Each lane sees the identical call sequence a
        // standalone run would make.
        for (i, ((lane, request), &is_active)) in
            lanes.iter_mut().zip(&mut requests).zip(&active).enumerate()
        {
            if !is_active {
                continue;
            }
            if let Some(harness) = lane.faults.as_mut() {
                // Fault injection needs the live simulator each epoch, so
                // a faulted lane effectively runs unparked (and unbatched).
                harness.begin_epoch(batch.lane_mut(i), request);
            }
            let from = batch.lane(i).now();
            let to = from + epoch;
            for (at, job) in lane.scenario.arrivals(from, to) {
                // Feeds the arrival queue without unparking the lane; the
                // batch re-checks parkability against it next step.
                batch.schedule_job(i, at, job);
            }
        }

        // Lockstep step: parked lanes share one idle-kernel dispatch,
        // the rest run the scalar epoch path. Arity is correct by
        // construction, so an error here is unreachable; treat it as
        // "no lane stepped" and end the run with partial metrics.
        if batch
            .run_epoch_into(&active, &requests, &mut reports)
            .is_err()
        {
            break;
        }

        // Post-step pass: QoS accounting, observation and the next
        // decision, in lane order. All batch calls below are `&self`,
        // so the error slice can stay borrowed across the loop.
        let errors = batch.lane_errors();
        for (i, ((((lane, request), is_active), ls), (report, error))) in lanes
            .iter_mut()
            .zip(&mut requests)
            .zip(active.iter_mut())
            .zip(states.iter_mut())
            .zip(reports.iter().zip(errors))
            .enumerate()
        {
            if !*is_active {
                continue;
            }
            if error.is_some() {
                *is_active = false;
                continue;
            }
            ls.epochs_done += 1;
            // A parked (kernel-path) epoch completes no jobs, so the
            // tracker would not move: every snapshot delta is exactly
            // zero (`x - x` is `+0.0` for finite totals) and the ratio
            // takes its no-demand branch. Skipping the snapshot
            // round-trip is therefore bit-identical to the live path.
            let (epoch_units, epoch_violations, epoch_qos_ratio) = if batch.lane_parked(i) {
                (0.0, 0, 1.0)
            } else {
                ls.tracker.observe_all(report.completed());
                let snapshot = ls.tracker.snapshot();
                let units = snapshot.units - ls.prev_snapshot.units;
                let max_units = snapshot.max_units - ls.prev_snapshot.max_units;
                let violations = snapshot.violations - ls.prev_snapshot.violations;
                ls.prev_snapshot = snapshot;
                let ratio = if max_units > 0.0 {
                    (units / max_units).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                (units, violations, ratio)
            };

            for ((r, &max_level), frac) in report
                .clusters
                .iter()
                .zip(&ls.max_levels)
                .zip(ls.level_frac_sum.iter_mut())
            {
                ls.transitions += u64::from(r.transitions);
                *frac += r.level as f64 / max_level as f64;
                ls.idle_gated_core_s += r.idle_gated_s;
                ls.idle_collapsed_core_s += r.idle_collapsed_s;
            }

            batch.observe_lane_into(i, report, &mut ls.state.soc);
            ls.state.qos = QosFeedback {
                qos_ratio: epoch_qos_ratio,
                units: epoch_units,
                violations: epoch_violations,
                pending_jobs: batch.lane_queued_jobs(i),
            };
            if let Some(trace) = ls.trace.as_mut() {
                let num_clusters = report.clusters.len();
                let mut row: Vec<f64> = Vec::with_capacity(2 * num_clusters + 2);
                for r in &report.clusters {
                    row.push(r.level as f64);
                }
                for r in &report.clusters {
                    row.push(r.util_max);
                }
                row.push(report.energy_j / epoch.as_secs_f64());
                row.push(epoch_units);
                trace.record(report.ended_at, row);
            }
            let _decide_span = obs::span!("runner.decide");
            // xtask-hotpath: begin (per-epoch decision dispatch, no allocation)
            match lane.faults.as_mut() {
                Some(harness) => {
                    harness.decide(lane.governor.as_mut(), &mut ls.state, request);
                }
                None => lane.governor.decide_into(&ls.state, request),
            }
            // xtask-hotpath: end
        }
    }

    // Write resident domain state back so final energy/queue/time reads
    // see live lanes.
    batch.unpark_all();
    states
        .into_iter()
        .zip(lanes.iter())
        .enumerate()
        .map(|(i, (ls, lane))| {
            let soc = batch.lane(i);
            let energy_j = soc.total_energy_j() - ls.start_energy;
            let unfinished = soc.queued_jobs() + soc.pending_arrivals();
            let qos = ls.tracker.finalize(unfinished);
            let wall = (soc.now() - ls.started_at).as_secs_f64();
            let (seus_detected, table_reloads) = lane.governor.seu_recovery_counts();
            let (watchdog_engagements, fault_counts) = match &lane.faults {
                Some(harness) => (harness.watchdog_engagements(), *harness.counts()),
                None => (0, FaultCounts::default()),
            };
            RUNS.inc();
            LAST_ENERGY_PER_QOS.set(qos.energy_per_qos(energy_j));
            RunMetrics {
                energy_j,
                energy_per_qos: qos.energy_per_qos(energy_j),
                qos,
                avg_power_w: if wall > 0.0 { energy_j / wall } else { 0.0 },
                transitions: ls.transitions,
                epochs: ls.epochs_done,
                jobs_submitted: soc.jobs_submitted() - ls.start_jobs,
                mean_level_frac: ls
                    .level_frac_sum
                    .iter()
                    .map(|s| s / ls.epochs_done.max(1) as f64)
                    .collect(),
                idle_gated_core_s: ls.idle_gated_core_s,
                idle_collapsed_core_s: ls.idle_collapsed_core_s,
                watchdog_engagements,
                fault_counts,
                seus_detected,
                table_reloads,
                trace: ls.trace,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::GovernorKind;
    use soc::SocConfig;
    use workload::ScenarioKind;

    fn soc() -> Soc {
        Soc::new(SocConfig::odroid_xu3_like().unwrap()).unwrap()
    }

    #[test]
    fn performance_beats_powersave_on_gaming_qos() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Gaming.build(1);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(10),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let save = run_with(GovernorKind::Powersave);
        assert!(
            perf.qos.qos_ratio() > 0.95,
            "performance delivers: {:?}",
            perf.qos
        );
        assert!(
            save.qos.qos_ratio() < 0.5,
            "powersave collapses: {:?}",
            save.qos
        );
        assert!(perf.energy_j > 2.0 * save.energy_j);
    }

    #[test]
    fn powersave_wins_energy_on_idle() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Idle.build(2);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(10),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let save = run_with(GovernorKind::Powersave);
        assert!(save.energy_j < perf.energy_j / 2.0);
        assert!(save.qos.qos_ratio() > 0.9, "idle is easy even at min OPP");
    }

    #[test]
    fn ondemand_lands_between_the_extremes_on_video() {
        let run_with = |kind: GovernorKind| {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Video.build(3);
            let mut governor = kind.build(soc.config());
            run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(20),
            )
        };
        let perf = run_with(GovernorKind::Performance);
        let od = run_with(GovernorKind::Ondemand);
        assert!(
            od.energy_j < perf.energy_j,
            "ondemand saves energy vs performance"
        );
        assert!(
            od.qos.qos_ratio() > 0.85,
            "without giving up QoS: {:?}",
            od.qos
        );
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Camera.build(4);
        let mut governor = GovernorKind::Schedutil.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig::seconds(5),
        );
        assert_eq!(m.epochs, 250);
        assert!(m.energy_j > 0.0);
        assert!((m.avg_power_w - m.energy_j / 5.0).abs() < 1e-9);
        assert!(m.energy_per_qos >= m.energy_j / m.qos.max_units.max(1.0));
        assert_eq!(m.mean_level_frac.len(), 2);
        assert!(m.mean_level_frac.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(m.trace.is_none());
    }

    #[test]
    fn trace_records_one_row_per_epoch() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Audio.build(5);
        let mut governor = GovernorKind::Conservative.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig::seconds(2).with_trace(),
        );
        let trace = m.trace.expect("trace requested");
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.columns().len(), 6);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Mixed.build(7);
            let mut governor = GovernorKind::Interactive.build(soc.config());
            let m = run(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                RunConfig::seconds(15),
            );
            (m.energy_j, m.qos, m.transitions)
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn batched_runs_match_looped_runs_bit_for_bit() {
        let combos = [
            (ScenarioKind::Idle, GovernorKind::Ondemand, 11u64),
            (ScenarioKind::Video, GovernorKind::Schedutil, 12),
            (ScenarioKind::Idle, GovernorKind::Powersave, 13),
            (ScenarioKind::Mixed, GovernorKind::Interactive, 14),
        ];
        let config = RunConfig::seconds(3);

        let looped: Vec<RunMetrics> = combos
            .iter()
            .map(|&(scenario, governor, seed)| {
                let mut soc = soc();
                let mut scenario = scenario.build(seed);
                let mut governor = governor.build(soc.config());
                run(&mut soc, scenario.as_mut(), governor.as_mut(), config)
            })
            .collect();

        let mut batch = DeviceBatch::new(combos.iter().map(|_| soc()).collect::<Vec<_>>()).unwrap();
        let mut lanes: Vec<BatchLane> = combos
            .iter()
            .map(|&(scenario, governor, seed)| BatchLane {
                scenario: scenario.build(seed),
                governor: governor.build(batch.lane(0).config()),
                faults: None,
            })
            .collect();
        let batched = run_batch(&mut batch, &mut lanes, config);

        for (lane, (b, l)) in batched.iter().zip(&looped).enumerate() {
            assert_eq!(
                b.energy_j.to_bits(),
                l.energy_j.to_bits(),
                "lane {lane} energy diverged"
            );
            assert_eq!(b, l, "lane {lane} metrics diverged");
        }
    }

    #[test]
    fn batched_runs_with_faults_match_looped() {
        let config = RunConfig::seconds(2);
        let cfg = SocConfig::odroid_xu3_like().unwrap();
        let harness = || {
            FaultHarness::new(&cfg, 99, crate::e9_fault_resilience::default_base_rates()).unwrap()
        };

        let looped = {
            let mut soc = soc();
            let mut scenario = ScenarioKind::Gaming.build(21);
            let mut governor = GovernorKind::Ondemand.build(soc.config());
            let mut h = harness();
            run_with_faults(
                &mut soc,
                scenario.as_mut(),
                governor.as_mut(),
                config,
                Some(&mut h),
            )
        };

        let mut batch = DeviceBatch::new(vec![soc()]).unwrap();
        let mut lanes = vec![BatchLane {
            scenario: ScenarioKind::Gaming.build(21),
            governor: GovernorKind::Ondemand.build(batch.lane(0).config()),
            faults: Some(harness()),
        }];
        let batched = run_batch(&mut batch, &mut lanes, config);
        assert_eq!(batched[0], looped);
    }

    #[test]
    fn sub_epoch_duration_saturates_to_one_epoch() {
        let mut soc = soc();
        let mut scenario = ScenarioKind::Idle.build(1);
        let mut governor = GovernorKind::Powersave.build(soc.config());
        let m = run(
            &mut soc,
            scenario.as_mut(),
            governor.as_mut(),
            RunConfig {
                duration: SimDuration::from_millis(1),
                record_trace: false,
            },
        );
        assert_eq!(m.epochs, 1, "shorter-than-epoch runs round up to one");
        assert_eq!(soc.now(), simkit::SimTime::ZERO + soc.config().epoch);
        assert!(m.energy_j > 0.0);
    }
}

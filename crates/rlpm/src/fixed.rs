//! Q16.16 fixed-point arithmetic.
//!
//! The paper implements its policy on an FPGA; the datapath there holds
//! Q-values in fixed point. This module provides the exact arithmetic the
//! hardware model (`rlpm-hw`) uses, so the software agent can be run
//! bit-identically against the hardware and the bit-width study (E6) can
//! quantify the precision/area trade-off.

/// Number of fractional bits in [`Fx`].
pub const FRAC_BITS: u32 = 16;
const ONE: i64 = 1 << FRAC_BITS;

/// A Q16.16 signed fixed-point number with saturating arithmetic.
///
/// ```
/// use rlpm::fixed::Fx;
///
/// let a = Fx::from_f64(1.5);
/// let b = Fx::from_f64(-0.25);
/// assert_eq!((a + b).to_f64(), 1.25);
/// assert_eq!((a * b).to_f64(), -0.375);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx(i32);

impl Fx {
    /// The zero value.
    pub const ZERO: Fx = Fx(0);
    /// The smallest positive increment (2⁻¹⁶).
    pub const EPSILON: Fx = Fx(1);
    /// The largest representable value (~32768).
    pub const MAX: Fx = Fx(i32::MAX);
    /// The smallest representable value (~−32768).
    pub const MIN: Fx = Fx(i32::MIN);

    /// Converts from a float, rounding to the nearest representable value
    /// and saturating out-of-range inputs.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn from_f64(x: f64) -> Fx {
        assert!(!x.is_nan(), "cannot represent NaN in fixed point");
        let scaled = (x * ONE as f64).round();
        Fx(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts to a float (exact).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE as f64
    }

    /// Constructs `num / den` exactly in integer arithmetic, rounding to
    /// nearest and saturating. This is the constructor the hardware model
    /// uses for datapath constants (α, γ) so that `rlpm-hw` never touches
    /// floating point (`cargo xtask check` enforces this).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub const fn from_ratio(num: i64, den: i64) -> Fx {
        assert!(den != 0, "from_ratio denominator must be non-zero");
        // (num << 16) / den, rounded half away from zero. i64 holds
        // any i32-range numerator shifted by 16 with room to spare.
        let scaled = num << FRAC_BITS;
        let half = den / 2;
        let adjusted = if (scaled >= 0) == (den > 0) {
            scaled + if half >= 0 { half } else { -half }
        } else {
            scaled - if half >= 0 { half } else { -half }
        };
        let q = adjusted / den;
        if q > i32::MAX as i64 {
            Fx::MAX
        } else if q < i32::MIN as i64 {
            Fx::MIN
        } else {
            Fx(q as i32)
        }
    }

    /// Constructs a whole number, saturating at the representable range.
    pub const fn from_int(v: i32) -> Fx {
        Fx::from_ratio(v as i64, 1)
    }

    /// The raw underlying bits.
    pub fn to_bits(self) -> i32 {
        self.0
    }

    /// Reconstructs from raw bits.
    pub fn from_bits(bits: i32) -> Fx {
        Fx(bits)
    }

    /// Saturating multiplication.
    pub fn saturating_mul(self, rhs: Fx) -> Fx {
        let wide = (self.0 as i64 * rhs.0 as i64) >> FRAC_BITS;
        Fx(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// The maximum of two values.
    pub fn max(self, other: Fx) -> Fx {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl std::ops::Add for Fx {
    type Output = Fx;
    fn add(self, rhs: Fx) -> Fx {
        self.saturating_add(rhs)
    }
}

impl std::ops::Sub for Fx {
    type Output = Fx;
    fn sub(self, rhs: Fx) -> Fx {
        self.saturating_sub(rhs)
    }
}

impl std::ops::Mul for Fx {
    type Output = Fx;
    fn mul(self, rhs: Fx) -> Fx {
        self.saturating_mul(rhs)
    }
}

impl std::fmt::Display for Fx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl From<Fx> for f64 {
    fn from(v: Fx) -> f64 {
        v.to_f64()
    }
}

/// Quantises a float to a signed fixed-point grid with `frac_bits`
/// fractional bits and a 32-bit word, returning the dequantised float.
/// Used by the bit-width parity study (E6).
///
/// # Panics
///
/// Panics if `frac_bits >= 32` or `x` is NaN.
pub fn quantize(x: f64, frac_bits: u32) -> f64 {
    assert!(frac_bits < 32, "frac_bits must fit a 32-bit word");
    assert!(!x.is_nan(), "cannot quantise NaN");
    let one = (1i64 << frac_bits) as f64;
    let max = i32::MAX as f64;
    let min = i32::MIN as f64;
    ((x * one).round().clamp(min, max)) / one
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_of_exact_values() {
        for x in [-2.0, -0.5, 0.0, 0.25, 1.0, 100.015625] {
            assert_eq!(Fx::from_f64(x).to_f64(), x, "{x}");
        }
    }

    #[test]
    fn rounding_to_nearest() {
        // 1/65536 is the grid; halfway rounds away from zero via
        // f64::round.
        let tiny = 1.0 / 65536.0;
        assert_eq!(Fx::from_f64(tiny * 0.4).to_f64(), 0.0);
        assert_eq!(Fx::from_f64(tiny * 0.6).to_f64(), tiny);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(Fx::from_f64(1e12), Fx::MAX);
        assert_eq!(Fx::from_f64(-1e12), Fx::MIN);
        assert_eq!(Fx::MAX + Fx::from_f64(1.0), Fx::MAX);
        assert_eq!(Fx::MIN - Fx::from_f64(1.0), Fx::MIN);
        assert_eq!(Fx::from_f64(30000.0) * Fx::from_f64(30000.0), Fx::MAX);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Fx::from_f64(f64::NAN);
    }

    #[test]
    fn multiplication_matches_float_for_small_values() {
        let a = Fx::from_f64(3.125);
        let b = Fx::from_f64(-2.5);
        assert_eq!((a * b).to_f64(), -7.8125);
    }

    #[test]
    fn display_renders_decimal() {
        assert_eq!(Fx::from_f64(1.5).to_string(), "1.50000");
    }

    #[test]
    fn bits_round_trip() {
        let v = Fx::from_f64(-12.0625);
        assert_eq!(Fx::from_bits(v.to_bits()), v);
    }

    #[test]
    fn quantize_is_coarser_with_fewer_bits() {
        let x = 0.123456789;
        let q8 = quantize(x, 8);
        let q16 = quantize(x, 16);
        let q24 = quantize(x, 24);
        assert!((x - q24).abs() <= (x - q16).abs());
        assert!((x - q16).abs() <= (x - q8).abs());
        assert!((x - q8).abs() <= 1.0 / 512.0 + 1e-12);
    }

    #[test]
    fn quantize_16_matches_fx() {
        for x in [-3.7, 0.0, 0.1, 2.9999, 1000.123] {
            assert_eq!(quantize(x, 16), Fx::from_f64(x).to_f64(), "{x}");
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(x in -30000.0f64..30000.0) {
            let err = (Fx::from_f64(x).to_f64() - x).abs();
            prop_assert!(err <= 0.5 / 65536.0 + 1e-12);
        }

        #[test]
        fn prop_add_matches_float_within_range(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let sum = (Fx::from_f64(a) + Fx::from_f64(b)).to_f64();
            prop_assert!((sum - (a + b)).abs() < 2.0 / 65536.0);
        }

        #[test]
        fn prop_mul_error_bounded(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let prod = (Fx::from_f64(a) * Fx::from_f64(b)).to_f64();
            // Truncation after the multiply plus two input roundings.
            let tol = (a.abs() + b.abs() + 2.0) / 65536.0;
            prop_assert!((prod - a * b).abs() <= tol, "a={a} b={b} got {prod}");
        }

        #[test]
        fn prop_ordering_matches_float(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let (fa, fb) = (Fx::from_f64(a), Fx::from_f64(b));
            if (a - b).abs() > 1.0 / 65536.0 {
                prop_assert_eq!(fa > fb, a > b);
            }
        }

        #[test]
        fn prop_quantize_idempotent(x in -1000.0f64..1000.0, bits in 4u32..17) {
            let q = quantize(x, bits);
            prop_assert_eq!(quantize(q, bits), q);
        }

        /// Over the FULL raw-bit range (every `i32` is a valid `Fx`):
        /// addition never panics and saturates exactly where the
        /// infinitely-wide sum leaves `i32`.
        #[test]
        fn prop_full_range_add_never_panics_and_saturates(
            a in i32::MIN..=i32::MAX,
            b in i32::MIN..=i32::MAX,
        ) {
            let sum = Fx::from_bits(a) + Fx::from_bits(b);
            let exact = (a as i64 + b as i64).clamp(i32::MIN as i64, i32::MAX as i64);
            prop_assert_eq!(sum.to_bits() as i64, exact);
        }

        /// Full-range subtraction: no panic, exact clamp semantics.
        #[test]
        fn prop_full_range_sub_never_panics_and_saturates(
            a in i32::MIN..=i32::MAX,
            b in i32::MIN..=i32::MAX,
        ) {
            let diff = Fx::from_bits(a) - Fx::from_bits(b);
            let exact = (a as i64 - b as i64).clamp(i32::MIN as i64, i32::MAX as i64);
            prop_assert_eq!(diff.to_bits() as i64, exact);
        }

        /// Full-range multiplication: the widened `i64` product (two
        /// `i32` factors cannot overflow it) shifted by `FRAC_BITS` and
        /// clamped is exactly what the hardware-mirroring datapath
        /// produces — never a panic, never a wrap.
        #[test]
        fn prop_full_range_mul_never_panics_and_saturates(
            a in i32::MIN..=i32::MAX,
            b in i32::MIN..=i32::MAX,
        ) {
            let prod = Fx::from_bits(a) * Fx::from_bits(b);
            let exact = ((a as i64 * b as i64) >> 16).clamp(i32::MIN as i64, i32::MAX as i64);
            prop_assert_eq!(prod.to_bits() as i64, exact);
        }

        /// Saturation is sticky at the rails: adding a non-negative value
        /// to MAX stays MAX, subtracting one from MIN stays MIN.
        #[test]
        fn prop_rails_are_sticky(bits in 0i32..=i32::MAX) {
            let max = Fx::from_bits(i32::MAX);
            let min = Fx::from_bits(i32::MIN);
            let v = Fx::from_bits(bits);
            prop_assert_eq!(max + v, max);
            prop_assert_eq!(min - v, min);
        }
    }
}
